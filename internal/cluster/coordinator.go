package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/journal"
	"repro/internal/service"
	"repro/internal/trace"
)

// Defaults for shard planning.
const (
	// DefaultShardsPerWorker is how many shards a job targets per live
	// worker — more than one so a straggler doesn't serialise the tail.
	DefaultShardsPerWorker = 2
	// DefaultMaxShards caps a single job's shard count regardless of
	// fleet size.
	DefaultMaxShards = 32
)

// Speculative re-execution defaults: a shard is re-dispatched once it
// has run Factor × the median completed-shard duration (floored at
// MinWait), checked every Interval.
const (
	DefaultSpeculationFactor   = 1.5
	DefaultSpeculationMinWait  = 2 * time.Second
	DefaultSpeculationInterval = 100 * time.Millisecond
	defaultSpeculationQuantile = 0.5
)

// speculationConfig shapes the straggler detector.
type speculationConfig struct {
	Factor   float64
	MinWait  time.Duration
	Interval time.Duration
	Quantile float64
	Disabled bool
}

// Config assembles a Coordinator.
type Config struct {
	// Members is the worker registry (required).
	Members *Membership
	// Client performs shard dispatches (nil = http.DefaultClient). Shard
	// requests are bounded by the job context, not a client timeout.
	Client *http.Client
	// ShardsPerWorker targets this many shards per live worker
	// (0 = DefaultShardsPerWorker).
	ShardsPerWorker int
	// MaxShards caps shards per job (0 = DefaultMaxShards).
	MaxShards int
	// RetryBase / RetryMax shape the full-jitter backoff between failed
	// shard dispatch attempts (0 = DefaultRetryBase / DefaultRetryMax).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed fixes the jitter stream for deterministic tests
	// (0 = a fixed default stream).
	RetrySeed int64
	// SpeculationFactor / SpeculationMinWait / SpeculationInterval shape
	// the straggler detector (0 = the defaults above);
	// DisableSpeculation turns it off entirely.
	SpeculationFactor   float64
	SpeculationMinWait  time.Duration
	SpeculationInterval time.Duration
	DisableSpeculation  bool
}

// Coordinator turns one replicated job into seed-ranged shards spread
// over the live workers. Placement is consistent-hashed (identical
// shards land where their cache entries live), execution is arbitrated
// by a per-campaign claims board — the primary ring dispatch, idle
// workers pulling queued shards (work stealing), and speculative
// re-dispatches of stragglers all race idempotently, first byte-
// identical result wins — and whole jobs can be answered from any
// node's gossiped cache. Its Runner plugs into service.Service, so the
// coordinator node's queue, dedup, and content-addressed cache operate
// unchanged — the fingerprint still addresses the whole job.
type Coordinator struct {
	ms              *Membership
	client          *http.Client
	shardsPerWorker int
	maxShards       int
	backoff         *Backoff
	spec            speculationConfig
	gossip          *cacheGossip

	jobsSharded      atomic.Int64
	jobsLocal        atomic.Int64
	jobsResumed      atomic.Int64
	shardsDispatched atomic.Int64
	shardsCompleted  atomic.Int64
	shardFailovers   atomic.Int64
	shardsLocal      atomic.Int64
	shardsResumed    atomic.Int64

	// Elastic-execution counters: the claims board's steal/speculation
	// races and the gossip cache's job-level answers.
	claimSeq             atomic.Int64
	stealsServed         atomic.Int64
	stealsWon            atomic.Int64
	stealsLost           atomic.Int64
	speculationsLaunched atomic.Int64
	speculativeWins      atomic.Int64
	speculativeLosses    atomic.Int64
	duplicateResults     atomic.Int64
	integrityFailures    atomic.Int64
	gossipAnswers        atomic.Int64
	gossipMisses         atomic.Int64

	// boardMu guards the active campaign boards and the steal-token
	// routing table for the HTTP claim endpoints.
	boardMu sync.Mutex
	boards  []*board
	claims  map[string]stealRef
}

// stealRef routes a delivered claim token back to its board and task.
type stealRef struct {
	b *board
	t *shardTask
}

// NewCoordinator builds a coordinator over a membership.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Members == nil {
		panic("cluster: Coordinator needs a Membership")
	}
	c := &Coordinator{
		ms:              cfg.Members,
		client:          cfg.Client,
		shardsPerWorker: cfg.ShardsPerWorker,
		maxShards:       cfg.MaxShards,
		gossip:          newCacheGossip(),
		claims:          make(map[string]stealRef),
		spec: speculationConfig{
			Factor:   cfg.SpeculationFactor,
			MinWait:  cfg.SpeculationMinWait,
			Interval: cfg.SpeculationInterval,
			Quantile: defaultSpeculationQuantile,
			Disabled: cfg.DisableSpeculation,
		},
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if c.shardsPerWorker <= 0 {
		c.shardsPerWorker = DefaultShardsPerWorker
	}
	if c.maxShards <= 0 {
		c.maxShards = DefaultMaxShards
	}
	if c.spec.Factor <= 0 {
		c.spec.Factor = DefaultSpeculationFactor
	}
	if c.spec.MinWait <= 0 {
		c.spec.MinWait = DefaultSpeculationMinWait
	}
	if c.spec.Interval <= 0 {
		c.spec.Interval = DefaultSpeculationInterval
	}
	c.backoff = NewBackoff(cfg.RetryBase, cfg.RetryMax, cfg.RetrySeed)
	return c
}

// Members exposes the coordinator's worker registry.
func (c *Coordinator) Members() *Membership { return c.ms }

// Runner adapts the coordinator to the service's job executor interface.
func (c *Coordinator) Runner() service.Runner {
	return func(ctx context.Context, spec service.Spec) (*service.Result, error) {
		return c.Run(ctx, spec)
	}
}

// shardRange is one planned replica range.
type shardRange struct{ first, count int }

// planShards splits n replicas into at most `shards` contiguous ranges,
// as evenly as possible. Purely arithmetic: the merge result does not
// depend on the split, only shard sizing does.
func planShards(n, shards int) []shardRange {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	base, rem := n/shards, n%shards
	plan := make([]shardRange, 0, shards)
	first := 0
	for i := 0; i < shards; i++ {
		count := base
		if i < rem {
			count++
		}
		plan = append(plan, shardRange{first: first, count: count})
		first += count
	}
	return plan
}

// registerBoard admits a campaign board to the steal/claims endpoints.
func (c *Coordinator) registerBoard(b *board) {
	c.boardMu.Lock()
	defer c.boardMu.Unlock()
	c.boards = append(c.boards, b)
}

// unregisterBoard retires a finished campaign and forgets its
// outstanding steal tokens — a late delivery for one gets a clean
// "unknown token" ack and the worker drops the work.
func (c *Coordinator) unregisterBoard(b *board) {
	c.boardMu.Lock()
	defer c.boardMu.Unlock()
	for i, cur := range c.boards {
		if cur == b {
			c.boards = append(c.boards[:i], c.boards[i+1:]...)
			break
		}
	}
	for token, ref := range c.claims {
		if ref.b == b {
			delete(c.claims, token)
		}
	}
}

// Run executes one normalised spec across the cluster and merges the
// shards into the same Result a single node would produce. With no live
// workers the whole job runs locally (the coordinator is itself a
// capable scrubd node); either way a Spec.TimeoutSec budget bounds the
// execution even when the caller did not install a deadline, so local
// fallback and remote dispatch observe the same clock.
//
// Before planning, the gossiped cache index is consulted: when any node
// in the fleet already caches this fingerprint, its bytes answer the
// whole job (a Result's canonical JSON survives the round trip, so the
// answer is byte-identical to recomputation).
//
// When the job context carries a service.ShardLog (journal-backed
// daemons), Run journals the shard plan and each completed shard's wire
// payload, and on a resumed job reuses the journaled plan — checkpoints
// are keyed by replica range, so re-planning under a different fleet
// size would orphan them — skipping every range with a valid checkpoint.
func (c *Coordinator) Run(ctx context.Context, spec service.Spec) (*service.Result, error) {
	sys, mech, wl, err := spec.Build()
	if err != nil {
		return nil, err
	}
	// Deadline parity: the service normally installs the TimeoutSec
	// budget before invoking the runner, but a directly driven
	// coordinator must not let local fallback run unbounded while remote
	// dispatch is deadline-checked.
	if spec.TimeoutSec > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutSec*float64(time.Second)))
			defer cancel()
		}
	}
	fp := spec.Fingerprint()
	n := spec.Replicas
	sl := service.ShardLogFrom(ctx)

	if res, ok := c.gossipAnswer(ctx, fp); ok {
		return res, nil
	}

	var plan []shardRange
	if sl != nil && len(sl.Plan) > 0 {
		// Resumed job: reuse the journaled split even if the fleet has
		// changed shape (or vanished — runTask falls back locally).
		plan = make([]shardRange, len(sl.Plan))
		for i, rg := range sl.Plan {
			plan[i] = shardRange{first: rg.First, count: rg.Count}
		}
		c.jobsResumed.Add(1)
	} else {
		alive := c.ms.AliveCount()
		if alive == 0 {
			c.jobsLocal.Add(1)
			rep, err := core.RunReplicatedContext(ctx, sys, mech, wl, n)
			if err != nil {
				return nil, err
			}
			return service.NewResult(spec, rep), nil
		}
		plan = planShards(n, min(alive*c.shardsPerWorker, c.maxShards))
		if sl != nil {
			jp := make([]journal.ShardRange, len(plan))
			for i, rg := range plan {
				jp[i] = journal.ShardRange{First: rg.first, Count: rg.count}
			}
			sl.RecordPlan(jp)
		}
	}
	c.jobsSharded.Add(1)
	service.ReportShardProgress(ctx, 0, len(plan))

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	b := newBoard(c, fp, spec, plan, cancelRun)
	if dl, ok := ctx.Deadline(); ok {
		b.deadline = dl
	}
	if sl != nil {
		b.onWin = func(rg shardRange, payload []byte) {
			sl.RecordShard(journal.ShardRange{First: rg.first, Count: rg.count}, payload)
		}
	}

	var (
		wg     sync.WaitGroup
		specWg sync.WaitGroup
		done   atomic.Int32
		errs   = make([]error, len(plan))
	)
	// Revive journaled checkpoints before the board starts handing out
	// steals, so an already-durable range is never re-executed.
	for _, t := range b.tasks {
		taskCtx, taskCancel := context.WithCancel(runCtx)
		t.ctx, t.cancel = taskCtx, taskCancel
		if sl == nil {
			continue
		}
		jrg := journal.ShardRange{First: t.rg.first, Count: t.rg.count}
		raw := sl.Checkpoints[jrg]
		if resp, ok := checkpointResponse(raw, t.rg); ok {
			b.revive(t, resp, raw)
			c.shardsResumed.Add(1)
			service.ReportShardProgress(ctx, int(done.Add(1)), len(plan))
		}
	}
	c.registerBoard(b)
	defer c.unregisterBoard(b)

	for i, t := range b.tasks {
		if b.taskDone(t) {
			continue // revived from a checkpoint
		}
		wg.Add(1)
		go func(i int, t *shardTask) {
			defer wg.Done()
			defer t.cancel()
			if err := c.runTask(t.ctx, b, t, sys, mech, wl); err != nil {
				errs[i] = err
				cancelRun() // a doomed job should stop burning the fleet
				return
			}
			service.ReportShardProgress(ctx, int(done.Add(1)), len(plan))
		}(i, t)
	}
	if !c.spec.Disabled && len(plan) > 1 {
		specWg.Add(1)
		go func() {
			defer specWg.Done()
			c.speculate(runCtx, b, &specWg, sys, mech, wl)
		}()
	}
	wg.Wait()
	cancelRun() // stop the speculation monitor and any losing claims
	specWg.Wait()

	// An integrity failure dominates every other outcome: two honest
	// executions of a deterministic range can never disagree, so a byte
	// mismatch means a worker computed (or transported) a wrong answer
	// and nothing from this campaign can be trusted into a merge.
	if err := b.failed(); err != nil {
		return nil, err
	}
	if err := firstShardError(ctx, errs); err != nil {
		return nil, err
	}
	shards := make([]*core.Shard, len(plan))
	for i, t := range b.tasks {
		if t.winner == nil {
			return nil, fmt.Errorf("cluster: shard [%d,+%d) finished without a result", t.rg.first, t.rg.count)
		}
		sh, err := t.winner.Shard(t.rg.first, t.rg.count)
		if err != nil {
			return nil, err
		}
		shards[i] = sh
	}
	rep, err := core.MergeReplicated(mech.Name, wl.Name, n, shards)
	if err != nil {
		return nil, err
	}
	return service.NewResult(spec, rep), nil
}

// gossipAnswer tries to answer a whole job from another node's cache.
func (c *Coordinator) gossipAnswer(ctx context.Context, fp string) (*service.Result, bool) {
	holders := c.gossip.holders(fp)
	if len(holders) == 0 {
		return nil, false
	}
	for _, holder := range holders {
		res, err := fetchCachedResult(ctx, c.client, holder, fp)
		if err != nil {
			continue // stale index entry or unreachable holder; try the next
		}
		c.gossipAnswers.Add(1)
		return res, true
	}
	c.gossipMisses.Add(1)
	return nil, false
}

// GossipOnce sweeps every live worker's cache index into the gossip
// table. Each probe is bounded by timeout (0 = 2s).
func (c *Coordinator) GossipOnce(ctx context.Context, timeout time.Duration) {
	var targets []string
	for _, m := range c.ms.List() {
		if m.Alive {
			targets = append(targets, m.URL)
		}
	}
	c.gossip.sweep(ctx, c.client, targets, timeout)
}

// GossipLoop sweeps the fleet's cache indexes every interval until ctx
// ends (0 = 2s).
func (c *Coordinator) GossipLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.GossipOnce(ctx, interval)
		}
	}
}

// checkpointResponse revives a journaled shard checkpoint (a
// ShardResponse wire payload). A missing or corrupt checkpoint reports
// !ok and the shard recomputes — checkpoints are an optimisation, never
// load-bearing for correctness.
func checkpointResponse(raw json.RawMessage, rg shardRange) (*ShardResponse, bool) {
	if len(raw) == 0 {
		return nil, false
	}
	var resp ShardResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, false
	}
	if _, err := resp.Shard(rg.first, rg.count); err != nil {
		return nil, false
	}
	return &resp, true
}

// firstShardError picks the most informative failure: the job context's
// own error when the job was cancelled, otherwise the first shard error
// that is not a mere echo of sibling cancellation.
func firstShardError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		for _, e := range errs {
			if e != nil {
				return fmt.Errorf("cluster: job canceled: %w", e)
			}
		}
		return err
	}
	var fallback error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if !errors.Is(e, context.Canceled) {
			return e
		}
		if fallback == nil {
			fallback = e
		}
	}
	return fallback
}

// runTask drives one shard task to completion as its primary claimant,
// failing over across workers: placement follows the consistent-hash
// sequence for the task's key (owner first, then the deterministic
// failover order), a worker that errors is excluded for this shard (and
// declared dead on transport errors, where the whole node is suspect —
// an HTTP-level error proves the node is at least serving). Failed
// attempts feed the worker's circuit breaker and are separated by
// full-jitter exponential backoff; while the primary is parked the
// range is open for stealing. When no eligible worker remains the shard
// runs locally on the coordinator. A task whose winner arrived through
// another claim (a steal or a speculation) ends the loop with success.
func (c *Coordinator) runTask(ctx context.Context, b *board, t *shardTask, sys core.System, mech core.Mechanism, wl trace.Workload) error {
	exclude := make(map[string]bool)
	for attempt := 0; ; attempt++ {
		if b.taskDone(t) {
			return nil
		}
		id, baseURL, err := c.ms.acquireRanked(ctx, t.key, exclude)
		if errors.Is(err, ErrNoWorkers) {
			token := b.register(t, claimLocal, "coordinator")
			c.shardsLocal.Add(1)
			sh, err := core.RunShardContext(ctx, sys, mech, wl, t.rg.first, t.rg.count)
			if err != nil {
				b.releaseClaim(t, token)
				if b.taskDone(t) {
					return nil // cancelled because another claim won
				}
				return err
			}
			_, _, cerr := b.complete(t, token, NewShardResponse(sh))
			return cerr
		}
		if err != nil {
			if b.taskDone(t) {
				return nil
			}
			return fmt.Errorf("cluster: shard [%d,+%d): %w", t.rg.first, t.rg.count, err)
		}
		token := b.register(t, claimPrimary, id)
		c.shardsDispatched.Add(1)
		resp, err := postShard(ctx, c.client, baseURL, &ShardRequest{Spec: b.spec, First: t.rg.first, Count: t.rg.count})
		if err == nil {
			if _, err = resp.Shard(t.rg.first, t.rg.count); err == nil {
				c.ms.ReportSuccess(id)
				c.ms.release(id)
				c.shardsCompleted.Add(1)
				_, _, cerr := b.complete(t, token, resp)
				return cerr
			}
		}
		b.releaseClaim(t, token)
		// An HTTP-level refusal proves the transport works: it feeds the
		// breaker as a success even though this shard moves on. Anything
		// else (dial/read failure, garbled body) counts against the
		// breaker and marks the node suspect.
		var se *StatusError
		transport := !errors.As(err, &se)
		if transport {
			c.ms.ReportFailure(id)
		} else {
			c.ms.ReportSuccess(id)
		}
		c.ms.release(id)
		if b.taskDone(t) {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("cluster: shard [%d,+%d): %w", t.rg.first, t.rg.count, ctx.Err())
		}
		exclude[id] = true
		c.shardFailovers.Add(1)
		if transport {
			c.ms.markDead(id)
		}
		if err := c.backoff.Sleep(ctx, attempt); err != nil {
			if b.taskDone(t) {
				return nil
			}
			return fmt.Errorf("cluster: shard [%d,+%d): %w", t.rg.first, t.rg.count, err)
		}
	}
}

// speculate watches a campaign for stragglers and re-dispatches each at
// most once. The monitor exits when the campaign's context ends.
func (c *Coordinator) speculate(ctx context.Context, b *board, specWg *sync.WaitGroup, sys core.System, mech core.Mechanism, wl trace.Workload) {
	ticker := time.NewTicker(c.spec.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			for _, t := range b.stragglers(now, c.spec) {
				c.speculationsLaunched.Add(1)
				specWg.Add(1)
				go func(t *shardTask) {
					defer specWg.Done()
					c.speculateTask(t.ctx, b, t, sys, mech, wl)
				}(t)
			}
		}
	}
}

// speculateTask runs one speculative claim: a single extra execution
// attempt (least-loaded placement, deliberately off the straggling
// ring owner) racing the primary. Failures simply abandon the claim —
// the primary still owns the range, so a speculation can only ever
// help.
func (c *Coordinator) speculateTask(ctx context.Context, b *board, t *shardTask, sys core.System, mech core.Mechanism, wl trace.Workload) {
	if b.taskDone(t) {
		return
	}
	id, baseURL, err := c.ms.acquire(ctx, nil)
	if errors.Is(err, ErrNoWorkers) {
		token := b.register(t, claimSpeculative, "coordinator")
		sh, err := core.RunShardContext(ctx, sys, mech, wl, t.rg.first, t.rg.count)
		if err != nil {
			b.releaseClaim(t, token)
			return
		}
		_, _, _ = b.complete(t, token, NewShardResponse(sh))
		return
	}
	if err != nil {
		return
	}
	token := b.register(t, claimSpeculative, id)
	c.shardsDispatched.Add(1)
	resp, err := postShard(ctx, c.client, baseURL, &ShardRequest{Spec: b.spec, First: t.rg.first, Count: t.rg.count})
	if err == nil {
		if _, verr := resp.Shard(t.rg.first, t.rg.count); verr == nil {
			c.ms.ReportSuccess(id)
			c.ms.release(id)
			_, _, _ = b.complete(t, token, resp)
			return
		}
	}
	b.releaseClaim(t, token)
	var se *StatusError
	if !errors.As(err, &se) {
		c.ms.ReportFailure(id)
	} else {
		c.ms.ReportSuccess(id)
	}
	c.ms.release(id)
}

// maxClaimBodyBytes caps the claims endpoint's body: a stolen shard's
// result carries every replica payload, so it gets the journal's
// generous 64 MiB bound instead of the 1 MiB control-plane default.
const maxClaimBodyBytes = 64 << 20

// decodeStatus maps a body-decode failure onto its status: 413 when the
// body blew the size cap, 400 otherwise.
func decodeStatus(err error) int {
	if httpx.TooLarge(err) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// Handler serves the coordinator's cluster endpoints: worker join, the
// membership listing, the consistent-hash ring, and the work-stealing
// pair (hand out a pending shard; accept a claimed result). Mount it
// alongside the service handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+JoinPath, func(rw http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if err := httpx.DecodeJSON(rw, r, 0, true, &req); err != nil {
			writeJSONError(rw, decodeStatus(err), fmt.Errorf("cluster: decode join request: %w", err))
			return
		}
		m, err := c.ms.Join(req.URL)
		if err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(m)
	})
	mux.HandleFunc("GET "+WorkersPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(struct {
			Workers []Member `json:"workers"`
		}{c.ms.List()})
	})
	mux.HandleFunc("GET "+RingPath, func(rw http.ResponseWriter, r *http.Request) {
		ring := c.ms.Ring()
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(struct {
			Version uint64   `json:"version"`
			Members []string `json:"members"`
		}{ring.Version(), ring.Members()})
	})
	mux.HandleFunc("POST "+StealPath, func(rw http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if err := httpx.DecodeJSON(rw, r, 0, true, &req); err != nil {
			writeJSONError(rw, decodeStatus(err), fmt.Errorf("cluster: decode steal request: %w", err))
			return
		}
		sr, ok := c.stealPending(req.URL)
		if !ok {
			rw.WriteHeader(http.StatusNoContent)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(sr)
	})
	mux.HandleFunc("POST "+ClaimsPath, func(rw http.ResponseWriter, r *http.Request) {
		// Claim results carry a full ShardResponse — per-replica payloads
		// that legitimately run to megabytes — so this endpoint gets a far
		// larger cap than the control-plane default.
		var req ClaimResult
		if err := httpx.DecodeJSON(rw, r, maxClaimBodyBytes, true, &req); err != nil {
			writeJSONError(rw, decodeStatus(err), fmt.Errorf("cluster: decode claim result: %w", err))
			return
		}
		if req.Token == "" || req.Response == nil {
			writeJSONError(rw, http.StatusBadRequest, errors.New("cluster: claim result needs token and response"))
			return
		}
		ack := c.deliverClaim(req.Token, req.Response)
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(ack)
	})
	return mux
}

// stealPending hands one stealable shard from any active campaign to an
// idle worker, registering the claim token for later delivery.
func (c *Coordinator) stealPending(workerURL string) (*StealResponse, bool) {
	c.boardMu.Lock()
	boards := append([]*board(nil), c.boards...)
	c.boardMu.Unlock()
	for _, b := range boards {
		req, token, t, ok := b.stealTask(workerURL)
		if !ok {
			continue
		}
		c.boardMu.Lock()
		c.claims[token] = stealRef{b: b, t: t}
		c.boardMu.Unlock()
		c.stealsServed.Add(1)
		sr := &StealResponse{Token: token, Shard: *req}
		if !b.deadline.IsZero() {
			sr.Deadline = b.deadline.Format(time.RFC3339Nano)
		}
		return sr, true
	}
	return nil, false
}

// deliverClaim routes a stolen shard's result to its board. An unknown
// token (campaign finished, coordinator restarted) is acked as
// not-accepted so the worker drops the work — some other claim owns the
// range.
func (c *Coordinator) deliverClaim(token string, resp *ShardResponse) ClaimAck {
	c.boardMu.Lock()
	ref, ok := c.claims[token]
	if ok {
		delete(c.claims, token)
	}
	c.boardMu.Unlock()
	if !ok {
		return ClaimAck{Accepted: false}
	}
	known, won, _ := ref.b.complete(ref.t, token, resp)
	return ClaimAck{Accepted: known, Won: won}
}

// RingVersion exposes the placement epoch for health and metrics.
func (c *Coordinator) RingVersion() uint64 { return c.ms.RingVersion() }

// CoordinatorSnapshot is a point-in-time view of the coordinator's
// dispatch counters, claims-board races, gossip table, and fleet.
type CoordinatorSnapshot struct {
	Workers           int   `json:"workers"`
	WorkersAlive      int   `json:"workers_alive"`
	WorkersEvicted    int64 `json:"workers_evicted"`
	JobsSharded       int64 `json:"jobs_sharded"`
	JobsLocal         int64 `json:"jobs_local"`
	JobsResumed       int64 `json:"jobs_resumed"`
	ShardsDispatched  int64 `json:"shards_dispatched"`
	ShardsCompleted   int64 `json:"shards_completed"`
	ShardFailovers    int64 `json:"shard_failovers"`
	ShardsLocal       int64 `json:"shards_local"`
	ShardsResumed     int64 `json:"shards_resumed"`
	HeartbeatFailures int64 `json:"heartbeat_failures"`

	RingVersion          uint64  `json:"ring_version"`
	StealsServed         int64   `json:"steals_served"`
	StealsWon            int64   `json:"steals_won"`
	StealsLost           int64   `json:"steals_lost"`
	SpeculationsLaunched int64   `json:"speculations_launched"`
	SpeculativeWins      int64   `json:"speculative_wins"`
	SpeculativeLosses    int64   `json:"speculative_losses"`
	DuplicateResults     int64   `json:"duplicate_results"`
	IntegrityFailures    int64   `json:"integrity_failures"`
	GossipAnswers        int64   `json:"gossip_answers"`
	GossipMisses         int64   `json:"gossip_misses"`
	GossipEntries        int     `json:"gossip_entries"`
	GossipSweeps         int64   `json:"gossip_sweeps"`
	GossipAgeSeconds     float64 `json:"gossip_age_seconds"`
}

// Snapshot returns the coordinator's counters.
func (c *Coordinator) Snapshot() CoordinatorSnapshot {
	entries, sweeps, age := c.gossip.stats()
	ageSec := age.Seconds()
	if age < 0 {
		ageSec = -1
	}
	return CoordinatorSnapshot{
		Workers:           c.ms.Size(),
		WorkersAlive:      c.ms.AliveCount(),
		WorkersEvicted:    c.ms.WorkersEvicted(),
		JobsSharded:       c.jobsSharded.Load(),
		JobsLocal:         c.jobsLocal.Load(),
		JobsResumed:       c.jobsResumed.Load(),
		ShardsDispatched:  c.shardsDispatched.Load(),
		ShardsCompleted:   c.shardsCompleted.Load(),
		ShardFailovers:    c.shardFailovers.Load(),
		ShardsLocal:       c.shardsLocal.Load(),
		ShardsResumed:     c.shardsResumed.Load(),
		HeartbeatFailures: c.ms.HeartbeatFailures(),

		RingVersion:          c.ms.RingVersion(),
		StealsServed:         c.stealsServed.Load(),
		StealsWon:            c.stealsWon.Load(),
		StealsLost:           c.stealsLost.Load(),
		SpeculationsLaunched: c.speculationsLaunched.Load(),
		SpeculativeWins:      c.speculativeWins.Load(),
		SpeculativeLosses:    c.speculativeLosses.Load(),
		DuplicateResults:     c.duplicateResults.Load(),
		IntegrityFailures:    c.integrityFailures.Load(),
		GossipAnswers:        c.gossipAnswers.Load(),
		GossipMisses:         c.gossipMisses.Load(),
		GossipEntries:        entries,
		GossipSweeps:         sweeps,
		GossipAgeSeconds:     ageSec,
	}
}

// WritePrometheus renders the coordinator counters in the Prometheus
// text format; scrubd appends it to /metrics on coordinator nodes.
func (c *Coordinator) WritePrometheus(out io.Writer) error {
	s := c.Snapshot()
	metrics := []promMetric{
		{"scrubd_cluster_workers", "Registered workers, dead or alive.", "gauge", float64(s.Workers)},
		{"scrubd_cluster_workers_alive", "Workers currently passing heartbeats.", "gauge", float64(s.WorkersAlive)},
		{"scrubd_cluster_jobs_sharded_total", "Jobs executed as sharded cluster runs.", "counter", float64(s.JobsSharded)},
		{"scrubd_cluster_jobs_local_total", "Jobs executed wholly on the coordinator.", "counter", float64(s.JobsLocal)},
		{"scrubd_cluster_shards_dispatched_total", "Shard dispatches attempted.", "counter", float64(s.ShardsDispatched)},
		{"scrubd_cluster_shards_completed_total", "Shards completed by workers.", "counter", float64(s.ShardsCompleted)},
		{"scrubd_cluster_shard_failovers_total", "Shard attempts moved to another worker.", "counter", float64(s.ShardFailovers)},
		{"scrubd_cluster_shards_local_total", "Shards executed locally as fallback.", "counter", float64(s.ShardsLocal)},
		{"scrubd_cluster_shards_resumed_total", "Shards revived from journal checkpoints.", "counter", float64(s.ShardsResumed)},
		{"scrubd_cluster_jobs_resumed_total", "Jobs resumed from a journaled shard plan.", "counter", float64(s.JobsResumed)},
		{"scrubd_cluster_heartbeat_failures_total", "Failed worker health probes.", "counter", float64(s.HeartbeatFailures)},
		{"scrubd_cluster_workers_evicted_total", "Dead workers evicted after the TTL.", "counter", float64(s.WorkersEvicted)},
		{"scrubd_cluster_ring_version", "Consistent-hash placement epoch (bumps on join/evict).", "gauge", float64(s.RingVersion)},
		{"scrubd_cluster_steals_served_total", "Pending shards handed to idle workers.", "counter", float64(s.StealsServed)},
		{"scrubd_cluster_steals_won_total", "Stolen-shard results that won their range.", "counter", float64(s.StealsWon)},
		{"scrubd_cluster_steals_lost_total", "Stolen-shard results beaten by another claim.", "counter", float64(s.StealsLost)},
		{"scrubd_cluster_speculations_launched_total", "Straggling shards re-dispatched speculatively.", "counter", float64(s.SpeculationsLaunched)},
		{"scrubd_cluster_speculative_wins_total", "Speculative results that won their range.", "counter", float64(s.SpeculativeWins)},
		{"scrubd_cluster_speculative_losses_total", "Speculative results beaten by another claim.", "counter", float64(s.SpeculativeLosses)},
		{"scrubd_cluster_duplicate_results_total", "Byte-identical losing results discarded.", "counter", float64(s.DuplicateResults)},
		{"scrubd_cluster_integrity_failures_total", "Campaigns aborted on divergent shard results.", "counter", float64(s.IntegrityFailures)},
		{"scrubd_cluster_gossip_answers_total", "Jobs answered from a remote node's cache.", "counter", float64(s.GossipAnswers)},
		{"scrubd_cluster_gossip_misses_total", "Gossip lookups whose holders all failed.", "counter", float64(s.GossipMisses)},
		{"scrubd_cluster_gossip_entries", "Fingerprints in the gossiped cache index.", "gauge", float64(s.GossipEntries)},
		{"scrubd_cluster_gossip_sweeps_total", "Completed cache-index sweeps.", "counter", float64(s.GossipSweeps)},
		{"scrubd_cluster_gossip_age_seconds", "Seconds since the last cache-index sweep (-1 = never).", "gauge", s.GossipAgeSeconds},
	}
	if err := writeProm(out, metrics); err != nil {
		return err
	}
	// Per-worker labeled series: breaker position and transport retries.
	members := c.ms.List()
	if len(members) == 0 {
		return nil
	}
	states := c.ms.BreakerStates()
	if _, err := fmt.Fprintf(out, "# HELP scrubd_cluster_breaker_state Worker circuit-breaker position (0=closed, 1=half-open, 2=open).\n# TYPE scrubd_cluster_breaker_state gauge\n"); err != nil {
		return err
	}
	for _, m := range members {
		if _, err := fmt.Fprintf(out, "scrubd_cluster_breaker_state{worker=%q} %d\n", m.ID, states[m.ID]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(out, "# HELP scrubd_cluster_worker_retries_total Transport-failed shard dispatches per worker.\n# TYPE scrubd_cluster_worker_retries_total counter\n"); err != nil {
		return err
	}
	for _, m := range members {
		if _, err := fmt.Fprintf(out, "scrubd_cluster_worker_retries_total{worker=%q} %d\n", m.ID, m.Retries); err != nil {
			return err
		}
	}
	return nil
}
