package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// StatusError is a non-2xx HTTP reply from a worker. The coordinator
// distinguishes it from transport errors: a StatusError proves the node
// is serving (exclude it for this shard only), while a transport error
// makes the whole node suspect (mark it dead).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: worker returned %d: %s", e.Code, e.Msg)
}

// DeadlineHeader carries the job deadline (RFC 3339, nanoseconds) on
// shard requests, so a worker bounds the simulation itself instead of
// relying on the coordinator's connection teardown to reach it.
const DeadlineHeader = "X-Scrubd-Deadline"

// postShard sends one shard request to a worker's base URL and decodes
// the response. Cancelling ctx aborts the request (and, on the worker,
// the simulation); a ctx deadline additionally propagates explicitly via
// DeadlineHeader.
func postShard(ctx context.Context, client *http.Client, baseURL string, req *ShardRequest) (*ShardResponse, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode shard request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: build shard request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		httpReq.Header.Set(DeadlineHeader, dl.Format(time.RFC3339Nano))
	}
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("cluster: post shard: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: httpResp.StatusCode, Msg: readErrorBody(httpResp.Body)}
	}
	var resp ShardResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: decode shard response: %w", err)
	}
	return &resp, nil
}

// readErrorBody extracts the error message from a JSON error reply,
// falling back to the raw (truncated) body.
func readErrorBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil {
		return "unreadable error body"
	}
	var wire struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &wire) == nil && wire.Error != "" {
		return wire.Error
	}
	return strings.TrimSpace(string(raw))
}

// Join announces a worker's base URL to a coordinator once.
func Join(ctx context.Context, client *http.Client, coordinatorURL, selfURL string) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(JoinRequest{URL: selfURL})
	if err != nil {
		return fmt.Errorf("cluster: encode join request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(coordinatorURL, "/")+JoinPath, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: build join request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: join %s: %w", coordinatorURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Msg: readErrorBody(resp.Body)}
	}
	return nil
}

// JoinLoop keeps a worker registered: it retries the first join with a
// short backoff until it succeeds, then re-announces every interval so a
// restarted coordinator re-learns the fleet. It runs until ctx ends.
// logf (may be nil) receives join failures.
func JoinLoop(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	retry := time.Second
	for {
		err := Join(ctx, client, coordinatorURL, selfURL)
		var wait time.Duration
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			logf("cluster: join failed (retrying in %s): %v", retry, err)
			wait = retry
			if retry < interval {
				retry *= 2
			}
		} else {
			retry = time.Second
			wait = interval
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
