package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff defaults for shard dispatch retries.
const (
	DefaultRetryBase = 50 * time.Millisecond
	DefaultRetryMax  = 2 * time.Second
)

// Backoff computes exponential backoff delays with full jitter: attempt
// n draws uniformly from [0, min(max, base<<n)). Full jitter (rather
// than equal or decorrelated jitter) spreads a thundering herd of
// retries across the whole window, which matters when one worker's
// failure makes every in-flight shard retry at once.
//
// A Backoff is safe for concurrent use and deterministic given a seed
// and a draw order — tests pin sequences by seeding and drawing
// single-threaded.
type Backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a backoff schedule (base 0 = DefaultRetryBase,
// max 0 = DefaultRetryMax). The seed fixes the jitter stream.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultRetryBase
	}
	if max <= 0 {
		max = DefaultRetryMax
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay draws the full-jitter delay for the given attempt (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.base
	for i := 0; i < attempt && ceil < b.max; i++ {
		ceil *= 2
	}
	if ceil > b.max {
		ceil = b.max
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(ceil) + 1))
}

// Sleep blocks for the attempt's jittered delay or until ctx ends,
// returning ctx's error in the latter case.
func (b *Backoff) Sleep(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
