// Package chaosproxy is a fault-injecting TCP proxy for cluster tests.
// It sits between a coordinator and a worker (or any client/server pair)
// and misbehaves on command: dropping new connections, delaying them,
// blackholing established ones (accept, then read and discard forever —
// the peer sees a hang, not an error), or resetting them (RST via
// SO_LINGER 0). Faults are chosen deterministically from a seed so a
// failing chaos test replays bit-identically.
//
// The proxy changes behaviour only at connection granularity; bytes on a
// healthy connection flow unmodified. That matches the failure modes the
// coordinator's retry/breaker stack is built for: dead nodes, dropped
// packets, and half-open TCP states — not payload corruption, which the
// journal's CRCs cover separately.
package chaosproxy

import (
	"context"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the fault applied to one inbound connection.
type Mode int

const (
	// Pass proxies the connection faithfully.
	Pass Mode = iota
	// Drop closes the inbound connection immediately without dialing
	// upstream — the client sees a reset or EOF during its request.
	Drop
	// Delay holds the inbound connection for the configured latency
	// before proxying it (then passes traffic normally).
	Delay
	// Blackhole accepts and then swallows the connection: bytes are read
	// and discarded, nothing is forwarded, nothing comes back. The client
	// hangs until its own deadline fires.
	Blackhole
	// Reset proxies nothing and slams the inbound connection shut with
	// an RST (SO_LINGER 0) after a short read.
	Reset
)

// String names the mode for logs.
func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Blackhole:
		return "blackhole"
	case Reset:
		return "reset"
	}
	return "unknown"
}

// Plan weights the per-connection fault draw. Weights are relative;
// all-zero means every connection passes.
type Plan struct {
	Pass      int
	Drop      int
	Delay     int
	Blackhole int
	Reset     int
	// Latency is the hold applied by Delay connections (0 = 50ms).
	Latency time.Duration
}

func (p Plan) total() int { return p.Pass + p.Drop + p.Delay + p.Blackhole + p.Reset }

// draw picks a mode from the plan's weights using r.
func (p Plan) draw(r *rand.Rand) Mode {
	total := p.total()
	if total <= 0 {
		return Pass
	}
	n := r.Intn(total)
	for _, w := range []struct {
		mode   Mode
		weight int
	}{{Pass, p.Pass}, {Drop, p.Drop}, {Delay, p.Delay}, {Blackhole, p.Blackhole}, {Reset, p.Reset}} {
		if n < w.weight {
			return w.mode
		}
		n -= w.weight
	}
	return Pass
}

// Counters tallies connections by applied fault.
type Counters struct {
	Accepted  int64 `json:"accepted"`
	Passed    int64 `json:"passed"`
	Dropped   int64 `json:"dropped"`
	Delayed   int64 `json:"delayed"`
	Blackhole int64 `json:"blackholed"`
	Resets    int64 `json:"resets"`
}

// Proxy is one listening fault injector in front of a fixed upstream.
type Proxy struct {
	upstream string
	ln       net.Listener
	rng      *rand.Rand // guarded by mu
	mu       sync.Mutex
	plan     Plan

	accepted  atomic.Int64
	passed    atomic.Int64
	dropped   atomic.Int64
	delayed   atomic.Int64
	blackhole atomic.Int64
	resets    atomic.Int64

	closed  atomic.Bool
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}
}

// New starts a proxy on a fresh loopback port in front of upstream
// (host:port). The seed fixes the fault stream; the initial plan passes
// everything — arm faults with SetPlan.
func New(upstream string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		rng:      rand.New(rand.NewSource(seed)),
		plan:     Plan{Pass: 1},
		ctx:      ctx,
		cancel:   cancel,
		conns:    make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address (dial this instead of the
// upstream).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetPlan swaps the fault plan; it applies to subsequently accepted
// connections.
func (p *Proxy) SetPlan(plan Plan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plan = plan
}

// Snapshot returns the per-fault connection tallies.
func (p *Proxy) Snapshot() Counters {
	return Counters{
		Accepted:  p.accepted.Load(),
		Passed:    p.passed.Load(),
		Dropped:   p.dropped.Load(),
		Delayed:   p.delayed.Load(),
		Blackhole: p.blackhole.Load(),
		Resets:    p.resets.Load(),
	}
}

// Close stops accepting, severs every live connection, and waits for the
// proxy's goroutines.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	p.cancel()
	err := p.ln.Close()
	p.connsMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connsMu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) {
	p.connsMu.Lock()
	p.conns[c] = struct{}{}
	p.connsMu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.connsMu.Lock()
	delete(p.conns, c)
	p.connsMu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		p.mu.Lock()
		mode := p.plan.draw(p.rng)
		latency := p.plan.Latency
		p.mu.Unlock()
		if latency <= 0 {
			latency = 50 * time.Millisecond
		}
		p.wg.Add(1)
		go p.serve(conn, mode, latency)
	}
}

func (p *Proxy) serve(conn net.Conn, mode Mode, latency time.Duration) {
	defer p.wg.Done()
	p.track(conn)
	defer p.untrack(conn)
	switch mode {
	case Drop:
		p.dropped.Add(1)
		conn.Close()
	case Blackhole:
		p.blackhole.Add(1)
		// Swallow bytes until the peer gives up or the proxy closes.
		_, _ = io.Copy(io.Discard, conn)
		conn.Close()
	case Reset:
		p.resets.Add(1)
		// Read a little so the client commits to its request, then RST.
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		_, _ = conn.Read(buf)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		conn.Close()
	case Delay:
		p.delayed.Add(1)
		t := time.NewTimer(latency)
		select {
		case <-p.ctx.Done():
			t.Stop()
			conn.Close()
			return
		case <-t.C:
		}
		p.pipe(conn)
	default:
		p.passed.Add(1)
		p.pipe(conn)
	}
}

// pipe proxies conn to the upstream bidirectionally until either side
// closes.
func (p *Proxy) pipe(conn net.Conn) {
	up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		conn.Close()
		return
	}
	p.track(up)
	defer p.untrack(up)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = io.Copy(up, conn)
		closeWrite(up)
	}()
	go func() {
		defer wg.Done()
		_, _ = io.Copy(conn, up)
		closeWrite(conn)
	}()
	wg.Wait()
	conn.Close()
	up.Close()
}

// closeWrite half-closes a TCP connection so the peer sees EOF while the
// other direction keeps flowing.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
		return
	}
	c.Close()
}
