package chaosproxy

import (
	"bufio"
	"math/rand"
	"net"
	"testing"
	"time"
)

// startEcho runs a line-echo TCP server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := c.Write([]byte(line)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestProxyPassEchoes(t *testing.T) {
	p, err := New(startEcho(t), 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || line != "ping\n" {
		t.Fatalf("echo through proxy = %q, %v", line, err)
	}
	if s := p.Snapshot(); s.Passed != 1 || s.Accepted != 1 {
		t.Errorf("counters %+v, want 1 accepted/passed", s)
	}
}

func TestProxyDropSeversImmediately(t *testing.T) {
	p, err := New(startEcho(t), 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetPlan(Plan{Drop: 1})

	conn := dialProxy(t, p)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read on dropped connection succeeded")
	}
	if p.Snapshot().Dropped != 1 {
		t.Errorf("counters %+v, want 1 dropped", p.Snapshot())
	}
}

func TestProxyResetErrorsAfterWrite(t *testing.T) {
	p, err := New(startEcho(t), 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetPlan(Plan{Reset: 1})

	conn := dialProxy(t, p)
	_, _ = conn.Write([]byte("ping\n"))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read on reset connection succeeded")
	}
	if p.Snapshot().Resets != 1 {
		t.Errorf("counters %+v, want 1 reset", p.Snapshot())
	}
}

func TestProxyBlackholeHangsUntilDeadline(t *testing.T) {
	p, err := New(startEcho(t), 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetPlan(Plan{Blackhole: 1})

	conn := dialProxy(t, p)
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatalf("write into blackhole: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("blackhole read ended with %v, want timeout", err)
	}
	if p.Snapshot().Blackhole != 1 {
		t.Errorf("counters %+v, want 1 blackholed", p.Snapshot())
	}
}

func TestProxyDelayThenPass(t *testing.T) {
	p, err := New(startEcho(t), 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetPlan(Plan{Delay: 1, Latency: 50 * time.Millisecond})

	start := time.Now()
	conn := dialProxy(t, p)
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || line != "ping\n" {
		t.Fatalf("delayed echo = %q, %v", line, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("delayed connection answered in %v, want >= 50ms", elapsed)
	}
	if p.Snapshot().Delayed != 1 {
		t.Errorf("counters %+v, want 1 delayed", p.Snapshot())
	}
}

// TestPlanDrawDeterministic pins that a seeded fault stream replays
// identically — the property chaos tests rely on to be reproducible.
func TestPlanDrawDeterministic(t *testing.T) {
	plan := Plan{Pass: 3, Drop: 2, Delay: 1, Blackhole: 1, Reset: 2}
	a := rand.New(rand.NewSource(1234))
	b := rand.New(rand.NewSource(1234))
	for i := 0; i < 200; i++ {
		if ma, mb := plan.draw(a), plan.draw(b); ma != mb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ma, mb)
		}
	}
	// All-zero plan always passes.
	if m := (Plan{}).draw(a); m != Pass {
		t.Errorf("zero plan drew %v, want pass", m)
	}
}

func TestProxyCloseUnblocksConnections(t *testing.T) {
	p, err := New(startEcho(t), 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.SetPlan(Plan{Blackhole: 1})
	conn := dialProxy(t, p)
	_, _ = conn.Write([]byte("stuck\n"))

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		done <- err
	}()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("blackholed read returned data after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left a blackholed connection hanging")
	}
}
