package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Worker executes shard requests on behalf of a coordinator. Admission
// is bounded: at most MaxInFlight shards run concurrently; requests
// beyond that are rejected with 429 so the coordinator can place them
// elsewhere instead of queueing blindly behind a busy node.
type Worker struct {
	max int
	sem chan struct{}

	executed atomic.Int64
	failed   atomic.Int64
	rejected atomic.Int64
	busy     atomic.Int64
}

// NewWorker sizes a worker's shard executor (maxInFlight 0 = GOMAXPROCS).
func NewWorker(maxInFlight int) *Worker {
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	return &Worker{max: maxInFlight, sem: make(chan struct{}, maxInFlight)}
}

// MaxInFlight returns the concurrent shard bound.
func (w *Worker) MaxInFlight() int { return w.max }

// ShardHandler serves POST /v1/cluster/shards: decode a ShardRequest,
// run the replica range through the resilient shard runner, and return
// the full per-replica results. Cancelling the request (the coordinator
// failing over, or the job being cancelled) cancels the simulation.
func (w *Worker) ShardHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(rw, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
			return
		}
		var req ShardRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSONError(rw, http.StatusBadRequest, fmt.Errorf("cluster: decode shard request: %w", err))
			return
		}
		norm, err := req.Spec.Normalized()
		if err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		req.Spec = norm
		if err := req.Validate(); err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		select {
		case w.sem <- struct{}{}:
		default:
			w.rejected.Add(1)
			rw.Header().Set("Retry-After", "1")
			writeJSONError(rw, http.StatusTooManyRequests,
				fmt.Errorf("cluster: worker at capacity (%d shards in flight)", w.max))
			return
		}
		defer func() { <-w.sem }()
		w.busy.Add(1)
		defer w.busy.Add(-1)

		sys, mech, wl, err := norm.Build()
		if err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		ctx := r.Context()
		if hdr := r.Header.Get(DeadlineHeader); hdr != "" {
			dl, err := time.Parse(time.RFC3339Nano, hdr)
			if err != nil {
				writeJSONError(rw, http.StatusBadRequest,
					fmt.Errorf("cluster: bad %s header %q: %v", DeadlineHeader, hdr, err))
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, dl)
			defer cancel()
		}
		sh, err := core.RunShardContext(ctx, sys, mech, wl, req.First, req.Count)
		if err != nil {
			w.failed.Add(1)
			writeJSONError(rw, http.StatusInternalServerError, err)
			return
		}
		w.executed.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(rw).Encode(NewShardResponse(sh))
	})
}

// WorkerSnapshot is a point-in-time view of a worker's shard executor.
type WorkerSnapshot struct {
	ShardsExecuted int64 `json:"shards_executed"`
	ShardsFailed   int64 `json:"shards_failed"`
	ShardsRejected int64 `json:"shards_rejected"`
	ShardsBusy     int64 `json:"shards_busy"`
	MaxInFlight    int   `json:"max_in_flight"`
}

// Snapshot returns the worker's counters.
func (w *Worker) Snapshot() WorkerSnapshot {
	return WorkerSnapshot{
		ShardsExecuted: w.executed.Load(),
		ShardsFailed:   w.failed.Load(),
		ShardsRejected: w.rejected.Load(),
		ShardsBusy:     w.busy.Load(),
		MaxInFlight:    w.max,
	}
}

// WritePrometheus renders the worker counters in the Prometheus text
// format; scrubd appends it to /metrics on worker nodes.
func (w *Worker) WritePrometheus(out io.Writer) error {
	s := w.Snapshot()
	metrics := []promMetric{
		{"scrubd_cluster_worker_shards_executed_total", "Shards executed successfully.", "counter", float64(s.ShardsExecuted)},
		{"scrubd_cluster_worker_shards_failed_total", "Shards whose execution failed.", "counter", float64(s.ShardsFailed)},
		{"scrubd_cluster_worker_shards_rejected_total", "Shards rejected at capacity.", "counter", float64(s.ShardsRejected)},
		{"scrubd_cluster_worker_shards_busy", "Shards currently executing.", "gauge", float64(s.ShardsBusy)},
		{"scrubd_cluster_worker_max_inflight", "Concurrent shard bound.", "gauge", float64(s.MaxInFlight)},
	}
	return writeProm(out, metrics)
}

// promMetric is one Prometheus text-exposition sample.
type promMetric struct {
	name, help, typ string
	value           float64
}

func writeProm(out io.Writer, metrics []promMetric) error {
	for _, m := range metrics {
		if _, err := fmt.Fprintf(out, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

func writeJSONError(rw http.ResponseWriter, status int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
