package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/service"
)

// Worker executes shard requests on behalf of a coordinator. Admission
// is bounded: at most MaxInFlight shards run concurrently; requests
// beyond that are rejected with 429 so the coordinator can place them
// elsewhere instead of queueing blindly behind a busy node.
type Worker struct {
	max int
	sem chan struct{}

	// MaxBodyBytes caps the shard-request body (0 = 1 MiB). Set it
	// before mounting ShardHandler.
	MaxBodyBytes int64

	executed atomic.Int64
	failed   atomic.Int64
	rejected atomic.Int64
	busy     atomic.Int64

	// executedByClass splits executed shards by the spec's scheduling
	// class, so a worker's mix of interactive/normal/batch work is
	// visible per node.
	executedByClass [3]atomic.Int64

	// Steal-side counters: shards claimed from a coordinator's pending
	// board, those executed and delivered, and those whose result won.
	stealsClaimed  atomic.Int64
	stealsExecuted atomic.Int64
	stealsWon      atomic.Int64
}

// NewWorker sizes a worker's shard executor (maxInFlight 0 = GOMAXPROCS).
func NewWorker(maxInFlight int) *Worker {
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	return &Worker{max: maxInFlight, sem: make(chan struct{}, maxInFlight)}
}

// MaxInFlight returns the concurrent shard bound.
func (w *Worker) MaxInFlight() int { return w.max }

// ShardHandler serves POST /v1/cluster/shards: decode a ShardRequest,
// run the replica range through the resilient shard runner, and return
// the full per-replica results. Cancelling the request (the coordinator
// failing over, or the job being cancelled) cancels the simulation.
func (w *Worker) ShardHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(rw, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
			return
		}
		var req ShardRequest
		if err := httpx.DecodeJSON(rw, r, w.MaxBodyBytes, true, &req); err != nil {
			if httpx.TooLarge(err) {
				writeJSONError(rw, http.StatusRequestEntityTooLarge, fmt.Errorf("cluster: shard request: %w", err))
				return
			}
			writeJSONError(rw, http.StatusBadRequest, fmt.Errorf("cluster: decode shard request: %w", err))
			return
		}
		norm, err := req.Spec.Normalized()
		if err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		req.Spec = norm
		if err := req.Validate(); err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		select {
		case w.sem <- struct{}{}:
		default:
			w.rejected.Add(1)
			// The priority rides the spec across the wire: a rejected
			// interactive shard is invited back sooner than a batch one.
			service.SetRetryAfterClass(rw.Header(), len(w.sem), w.max, norm.Class())
			writeJSONError(rw, http.StatusTooManyRequests,
				fmt.Errorf("cluster: worker at capacity (%d shards in flight)", w.max))
			return
		}
		defer func() { <-w.sem }()

		if hdr := r.Header.Get(DeadlineHeader); hdr != "" {
			if _, err := time.Parse(time.RFC3339Nano, hdr); err != nil {
				writeJSONError(rw, http.StatusBadRequest,
					fmt.Errorf("cluster: bad %s header %q: %v", DeadlineHeader, hdr, err))
				return
			}
			req.deadline = hdr
		}
		resp, err := w.execute(r.Context(), &req)
		if err != nil {
			w.failed.Add(1)
			writeJSONError(rw, http.StatusInternalServerError, err)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(rw).Encode(resp)
	})
}

// execute runs one (already admitted, normalised) shard request to a
// wire response, bounding the simulation by the request's propagated
// deadline. It is the shared execution path of pushed shards
// (ShardHandler) and pulled ones (StealLoop); the caller holds the
// admission slot.
func (w *Worker) execute(ctx context.Context, req *ShardRequest) (*ShardResponse, error) {
	norm, err := req.Spec.Normalized()
	if err != nil {
		return nil, err
	}
	if err := (&ShardRequest{Spec: norm, First: req.First, Count: req.Count}).Validate(); err != nil {
		return nil, err
	}
	sys, mech, wl, err := norm.Build()
	if err != nil {
		return nil, err
	}
	if req.deadline != "" {
		dl, err := time.Parse(time.RFC3339Nano, req.deadline)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad shard deadline %q: %v", req.deadline, err)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	w.busy.Add(1)
	defer w.busy.Add(-1)
	sh, err := core.RunShardContext(ctx, sys, mech, wl, req.First, req.Count)
	if err != nil {
		return nil, err
	}
	w.executed.Add(1)
	if c := norm.Class(); c >= 0 && int(c) < len(w.executedByClass) {
		w.executedByClass[c].Add(1)
	}
	return NewShardResponse(sh), nil
}

// WorkerSnapshot is a point-in-time view of a worker's shard executor.
type WorkerSnapshot struct {
	ShardsExecuted int64 `json:"shards_executed"`
	ShardsFailed   int64 `json:"shards_failed"`
	ShardsRejected int64 `json:"shards_rejected"`
	ShardsBusy     int64 `json:"shards_busy"`
	MaxInFlight    int   `json:"max_in_flight"`
	// Per-class executed splits (by the spec's scheduling class).
	ShardsInteractive int64 `json:"shards_interactive"`
	ShardsNormal      int64 `json:"shards_normal"`
	ShardsBatch       int64 `json:"shards_batch"`
	// Steal-side counters: pending shards pulled from the coordinator,
	// results delivered, and deliveries that won their range.
	StealsClaimed  int64 `json:"steals_claimed"`
	StealsExecuted int64 `json:"steals_executed"`
	StealsWon      int64 `json:"steals_won"`
}

// Snapshot returns the worker's counters.
func (w *Worker) Snapshot() WorkerSnapshot {
	return WorkerSnapshot{
		ShardsExecuted:    w.executed.Load(),
		ShardsFailed:      w.failed.Load(),
		ShardsRejected:    w.rejected.Load(),
		ShardsBusy:        w.busy.Load(),
		MaxInFlight:       w.max,
		ShardsInteractive: w.executedByClass[service.ClassInteractive].Load(),
		ShardsNormal:      w.executedByClass[service.ClassNormal].Load(),
		ShardsBatch:       w.executedByClass[service.ClassBatch].Load(),
		StealsClaimed:     w.stealsClaimed.Load(),
		StealsExecuted:    w.stealsExecuted.Load(),
		StealsWon:         w.stealsWon.Load(),
	}
}

// WritePrometheus renders the worker counters in the Prometheus text
// format; scrubd appends it to /metrics on worker nodes.
func (w *Worker) WritePrometheus(out io.Writer) error {
	s := w.Snapshot()
	metrics := []promMetric{
		{"scrubd_cluster_worker_shards_executed_total", "Shards executed successfully.", "counter", float64(s.ShardsExecuted)},
		{"scrubd_cluster_worker_shards_failed_total", "Shards whose execution failed.", "counter", float64(s.ShardsFailed)},
		{"scrubd_cluster_worker_shards_rejected_total", "Shards rejected at capacity.", "counter", float64(s.ShardsRejected)},
		{"scrubd_cluster_worker_shards_busy", "Shards currently executing.", "gauge", float64(s.ShardsBusy)},
		{"scrubd_cluster_worker_max_inflight", "Concurrent shard bound.", "gauge", float64(s.MaxInFlight)},
		{"scrubd_cluster_worker_shards_interactive_total", "Interactive-class shards executed.", "counter", float64(s.ShardsInteractive)},
		{"scrubd_cluster_worker_shards_normal_total", "Normal-class shards executed.", "counter", float64(s.ShardsNormal)},
		{"scrubd_cluster_worker_shards_batch_total", "Batch-class shards executed.", "counter", float64(s.ShardsBatch)},
		{"scrubd_cluster_worker_steals_claimed_total", "Pending shards claimed from the coordinator.", "counter", float64(s.StealsClaimed)},
		{"scrubd_cluster_worker_steals_executed_total", "Stolen shards executed and delivered.", "counter", float64(s.StealsExecuted)},
		{"scrubd_cluster_worker_steals_won_total", "Stolen-shard deliveries that won their range.", "counter", float64(s.StealsWon)},
	}
	return writeProm(out, metrics)
}

// promMetric is one Prometheus text-exposition sample.
type promMetric struct {
	name, help, typ string
	value           float64
}

func writeProm(out io.Writer, metrics []promMetric) error {
	for _, m := range metrics {
		if _, err := fmt.Fprintf(out, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

func writeJSONError(rw http.ResponseWriter, status int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
