package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// --- Consistent-hash ring ---

func TestRingSequenceDeterministicAndComplete(t *testing.T) {
	ids := []string{"worker-001", "worker-002", "worker-003", "worker-004"}
	r1 := newRing(1, ids)
	r2 := newRing(1, []string{"worker-003", "worker-001", "worker-004", "worker-002"})
	for _, key := range []string{"a", "b", shardKey("fp", 0, 4), shardKey("fp", 4, 4)} {
		s1, s2 := r1.Sequence(key), r2.Sequence(key)
		if len(s1) != len(ids) {
			t.Fatalf("Sequence(%q) covers %d members, want %d", key, len(s1), len(ids))
		}
		seen := map[string]bool{}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("Sequence(%q) depends on input order: %v vs %v", key, s1, s2)
			}
			if seen[s1[i]] {
				t.Fatalf("Sequence(%q) repeats member %s", key, s1[i])
			}
			seen[s1[i]] = true
		}
		if r1.Owner(key) != s1[0] {
			t.Errorf("Owner(%q) = %s, Sequence[0] = %s", key, r1.Owner(key), s1[0])
		}
	}
	if newRing(1, nil).Sequence("x") != nil {
		t.Error("empty ring should yield a nil sequence")
	}
}

// TestRingRemapMinimal is the consistent-hashing contract: removing one
// member only remaps the keys that member owned; every other key keeps
// its owner (and so its co-located cache entries).
func TestRingRemapMinimal(t *testing.T) {
	ids := []string{"worker-001", "worker-002", "worker-003", "worker-004", "worker-005"}
	before := newRing(1, ids)
	after := newRing(2, ids[:4]) // worker-005 evicted

	keys := make([]string, 0, 256)
	for i := 0; i < 256; i++ {
		keys = append(keys, shardKey(fmt.Sprintf("fp-%03d", i), i, 4))
	}
	moved, ownedByRemoved := 0, 0
	for _, key := range keys {
		was, is := before.Owner(key), after.Owner(key)
		if was == "worker-005" {
			ownedByRemoved++
			continue
		}
		if was != is {
			moved++
			t.Errorf("key %q moved %s → %s though its owner survived", key, was, is)
		}
	}
	if ownedByRemoved == 0 {
		t.Fatal("no key was owned by the removed member; test proves nothing")
	}
	_ = moved
}

// TestRingVersionBumpsOnChurnOnly checks the placement epoch moves on
// join and eviction but not on health flips — a bouncing worker must
// not reshuffle placements.
func TestRingVersionBumpsOnChurnOnly(t *testing.T) {
	ms := NewMembershipWith(MembershipConfig{WorkerTTL: time.Minute})
	v0 := ms.RingVersion()
	a := mustJoin(t, ms, "http://10.0.0.1:1")
	mustJoin(t, ms, "http://10.0.0.2:1")
	v1 := ms.RingVersion()
	if v1 == v0 {
		t.Fatal("join did not bump the ring version")
	}
	ms.markDead(a.ID)
	if ms.RingVersion() != v1 {
		t.Error("health flip bumped the ring version")
	}
	if got := len(ms.Ring().Members()); got != 2 {
		t.Errorf("dead member dropped off the ring: %d members", got)
	}
	// Advance the clock past the TTL; the eviction sweep must bump.
	base := time.Now()
	ms.now = func() time.Time { return base.Add(2 * time.Minute) }
	ms.evictExpired()
	if ms.RingVersion() == v1 {
		t.Error("TTL eviction did not bump the ring version")
	}
	if got := len(ms.Ring().Members()); got != 1 {
		t.Errorf("evicted member still on the ring: %d members", got)
	}
}

// TestAcquireRankedFollowsRing checks keyed acquisition prefers the
// key's ring owner and falls over in ring order when the owner is
// excluded.
func TestAcquireRankedFollowsRing(t *testing.T) {
	ms := NewMembership(2)
	for i := 1; i <= 3; i++ {
		mustJoin(t, ms, fmt.Sprintf("http://10.0.0.%d:1", i))
	}
	key := shardKey("some-fingerprint", 0, 8)
	seq := ms.Ring().Sequence(key)
	ctx := context.Background()

	id, _, err := ms.acquireRanked(ctx, key, nil)
	if err != nil || id != seq[0] {
		t.Fatalf("acquireRanked = %q, %v; want ring owner %q", id, err, seq[0])
	}
	ms.release(id)
	id, _, err = ms.acquireRanked(ctx, key, map[string]bool{seq[0]: true})
	if err != nil || id != seq[1] {
		t.Fatalf("acquireRanked with owner excluded = %q, %v; want %q", id, err, seq[1])
	}
	ms.release(id)
}

// --- Helpers for board/steal tests ---

// parkedCampaign starts a cluster run whose only worker is at capacity,
// so every primary dispatch parks in acquireRanked and the whole plan
// is stealable. It returns the coordinator (speculation off), its HTTP
// handler server, the parked member's ID, and a channel carrying Run's
// outcome. Callers must eventually complete the campaign (by stealing)
// or release the member's slot.
type runOutcome struct {
	res *service.Result
	err error
}

func parkedCampaign(t *testing.T, spec service.Spec) (*Coordinator, *httptest.Server, string, chan runOutcome) {
	t.Helper()
	ms := NewMembership(1)
	m := mustJoin(t, ms, "http://127.0.0.1:1") // never dialed: its one slot is held below
	id, _, err := ms.acquire(context.Background(), nil)
	if err != nil || id != m.ID {
		t.Fatalf("failed to park the only worker: %q, %v", id, err)
	}
	c := NewCoordinator(Config{Members: ms, DisableSpeculation: true})
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	out := make(chan runOutcome, 1)
	go func() {
		res, err := c.Run(context.Background(), spec)
		out <- runOutcome{res, err}
	}()
	// Wait until the campaign's board is registered and stealable.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.boardMu.Lock()
		n := len(c.boards)
		c.boardMu.Unlock()
		if n > 0 {
			return c, srv, m.ID, out
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign board never registered")
		}
		time.Sleep(time.Millisecond)
	}
}

// stealAll drains a coordinator's stealable shards through the real
// HTTP steal/claims endpoints, executing each on the given worker.
func stealAll(t *testing.T, srv *httptest.Server, w *Worker, selfURL string) int {
	t.Helper()
	ctx := context.Background()
	stolen := 0
	for misses := 0; misses < 20; {
		req, token, err := StealOnce(ctx, srv.Client(), srv.URL, selfURL)
		if err != nil {
			t.Fatalf("StealOnce: %v", err)
		}
		if req == nil {
			misses++
			time.Sleep(5 * time.Millisecond)
			continue
		}
		resp, err := w.execute(ctx, req)
		if err != nil {
			t.Fatalf("execute stolen shard: %v", err)
		}
		ack, err := DeliverClaim(ctx, srv.Client(), srv.URL, token, resp)
		if err != nil {
			t.Fatalf("DeliverClaim: %v", err)
		}
		if !ack.Accepted || !ack.Won {
			t.Fatalf("fresh steal not accepted as winner: %+v", ack)
		}
		stolen++
	}
	return stolen
}

// TestWorkStealingDrainsParkedCampaign parks every primary dispatch
// behind a saturated worker and lets a thief pull the whole plan
// through the HTTP steal/claims endpoints: the campaign completes
// byte-identical to a standalone run without a single primary dispatch
// finishing.
func TestWorkStealingDrainsParkedCampaign(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	c, srv, parkedID, out := parkedCampaign(t, spec)
	thief := NewWorker(2)
	stolen := stealAll(t, srv, thief, "http://thief.example:1")
	if stolen == 0 {
		t.Fatal("nothing was stealable")
	}

	var got runOutcome
	select {
	case got = <-out:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not finish after its shards were stolen")
	}
	c.ms.release(parkedID)
	if got.err != nil {
		t.Fatalf("stolen campaign failed: %v", got.err)
	}
	if gotJSON := resultJSON(t, got.res); gotJSON != want {
		t.Errorf("stolen-campaign result differs from standalone:\n got %s\nwant %s", gotJSON, want)
	}
	snap := c.Snapshot()
	if snap.StealsServed != int64(stolen) || snap.StealsWon != int64(stolen) {
		t.Errorf("steal counters: %+v, want served=won=%d", snap, stolen)
	}
	if snap.IntegrityFailures != 0 {
		t.Errorf("unexpected integrity failures: %+v", snap)
	}
}

// TestStealSurvivesTTLEvictionMidClaim is the membership/board seam: a
// thief worker that is TTL-evicted between claiming a shard and
// delivering its result must neither lose the shard nor duplicate it —
// claim tokens are board-scoped, not membership-scoped.
func TestStealSurvivesTTLEvictionMidClaim(t *testing.T) {
	spec := tinySpec(t, 4)
	want := standaloneJSON(t, spec)

	c, srv, parkedID, out := parkedCampaign(t, spec)
	ms := c.ms

	// The thief is a registered member (it joined like any worker).
	thiefMember := mustJoin(t, ms, "http://10.8.8.8:1")
	thief := NewWorker(2)

	// Claim every stealable shard, executing but NOT delivering yet.
	ctx := context.Background()
	type held struct {
		token string
		resp  *ShardResponse
	}
	var claims []held
	for {
		req, token, err := StealOnce(ctx, srv.Client(), srv.URL, "http://10.8.8.8:1")
		if err != nil {
			t.Fatalf("StealOnce: %v", err)
		}
		if req == nil {
			break
		}
		resp, err := thief.execute(ctx, req)
		if err != nil {
			t.Fatalf("execute stolen shard: %v", err)
		}
		claims = append(claims, held{token, resp})
	}
	if len(claims) == 0 {
		t.Fatal("nothing was stealable")
	}

	// Evict the thief mid-claim: dead + past TTL. Steals hold no
	// membership in-flight slot, so the eviction is not deferred.
	ms.markDead(thiefMember.ID)
	ms.mu.Lock()
	ms.cfg.WorkerTTL = time.Minute
	ms.mu.Unlock()
	base := time.Now()
	ms.now = func() time.Time { return base.Add(time.Hour) }
	ms.evictExpired()
	found := false
	for _, m := range ms.List() {
		if m.ID == thiefMember.ID {
			found = true
		}
	}
	if found {
		t.Fatal("thief was not evicted; test proves nothing")
	}

	// Deliver after eviction: every claim must still be accepted and win.
	for _, cl := range claims {
		ack, err := DeliverClaim(ctx, srv.Client(), srv.URL, cl.token, cl.resp)
		if err != nil {
			t.Fatalf("DeliverClaim after eviction: %v", err)
		}
		if !ack.Accepted || !ack.Won {
			t.Fatalf("evicted thief's claim rejected: %+v", ack)
		}
	}
	var got runOutcome
	select {
	case got = <-out:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not finish after evicted thief delivered")
	}
	c.ms.release(parkedID)
	if got.err != nil {
		t.Fatalf("campaign failed: %v", got.err)
	}
	if gotJSON := resultJSON(t, got.res); gotJSON != want {
		t.Errorf("result differs from standalone:\n got %s\nwant %s", gotJSON, want)
	}
	if snap := c.Snapshot(); snap.DuplicateResults != 0 || snap.IntegrityFailures != 0 {
		t.Errorf("eviction race produced duplicates or integrity failures: %+v", snap)
	}
}

// TestStealAbandonedByDeadThief checks a thief that claims a shard and
// dies never wedges the campaign: the primary still owns the range, and
// the thief's eventual late delivery is refused cleanly.
func TestStealAbandonedByDeadThief(t *testing.T) {
	spec := tinySpec(t, 2)
	want := standaloneJSON(t, spec)

	c, srv, parkedID, out := parkedCampaign(t, spec)
	ctx := context.Background()

	// The thief claims one shard and vanishes (never delivers).
	req, token, err := StealOnce(ctx, srv.Client(), srv.URL, "http://dead-thief.example:1")
	if err != nil || req == nil {
		t.Fatalf("StealOnce = %v, %v; want a shard", req, err)
	}
	// Free the parked worker's slot — except the member was never a real
	// server, so swap in a live one at the same load point: release the
	// slot and let the primary fail over to a real worker.
	realWorker, realSrv := newWorkerServer(t, 2)
	mustJoin(t, c.ms, realSrv.URL)
	c.ms.markDead(parkedID) // the parked member never dials anyway
	c.ms.release(parkedID)

	var got runOutcome
	select {
	case got = <-out:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign wedged behind an abandoned steal claim")
	}
	if got.err != nil {
		t.Fatalf("campaign failed: %v", got.err)
	}
	if gotJSON := resultJSON(t, got.res); gotJSON != want {
		t.Errorf("result differs from standalone:\n got %s\nwant %s", gotJSON, want)
	}
	if realWorker.Snapshot().ShardsExecuted == 0 {
		t.Error("failover worker executed nothing; primary never recovered the range")
	}

	// The dead thief's delivery arrives after the campaign closed: it
	// must be refused (not merged, not crashed).
	thief := NewWorker(1)
	resp, err := thief.execute(ctx, req)
	if err != nil {
		t.Fatalf("late execute: %v", err)
	}
	ack, err := DeliverClaim(ctx, srv.Client(), srv.URL, token, resp)
	if err != nil {
		t.Fatalf("late DeliverClaim: %v", err)
	}
	if ack.Accepted {
		t.Errorf("late claim for a finished campaign was accepted: %+v", ack)
	}
}

// --- Board arbitration ---

func testBoard(t *testing.T, spec service.Spec, ranges []shardRange) (*Coordinator, *board, context.Context) {
	t.Helper()
	c := NewCoordinator(Config{Members: NewMembership(1), DisableSpeculation: true})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	b := newBoard(c, spec.Fingerprint(), spec, ranges, cancel)
	for _, tk := range b.tasks {
		tk.ctx, tk.cancel = context.WithCancel(ctx)
	}
	return c, b, ctx
}

// TestBoardDuplicateResultDiscarded: when two claims race and return
// byte-identical results, the first wins and the second is counted as a
// discarded duplicate — never an error.
func TestBoardDuplicateResultDiscarded(t *testing.T) {
	spec := tinySpec(t, 2)
	c, b, _ := testBoard(t, spec, []shardRange{{0, 2}})
	task := b.tasks[0]

	w := NewWorker(1)
	resp, err := w.execute(context.Background(), &ShardRequest{Spec: spec, First: 0, Count: 2})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	stealTok := b.register(task, claimSteal, "thief")
	primaryTok := b.register(task, claimPrimary, "worker-001")

	known, won, err := b.complete(task, stealTok, resp)
	if !known || !won || err != nil {
		t.Fatalf("first complete = (%v,%v,%v), want winner", known, won, err)
	}
	known, won, err = b.complete(task, primaryTok, resp)
	if !known || won || err != nil {
		t.Fatalf("duplicate complete = (%v,%v,%v), want known loser", known, won, err)
	}
	if c.duplicateResults.Load() != 1 || c.stealsWon.Load() != 1 {
		t.Errorf("counters: dup=%d stealsWon=%d", c.duplicateResults.Load(), c.stealsWon.Load())
	}
	// Replaying a consumed token is a no-op.
	if known, _, _ := b.complete(task, primaryTok, resp); known {
		t.Error("consumed token accepted twice")
	}
}

// TestBoardIntegrityMismatchAborts: divergent results for the same
// range are a hard campaign failure, not a silent tiebreak.
func TestBoardIntegrityMismatchAborts(t *testing.T) {
	spec := tinySpec(t, 2)
	c, b, ctx := testBoard(t, spec, []shardRange{{0, 2}})
	task := b.tasks[0]

	w := NewWorker(1)
	good, err := w.execute(context.Background(), &ShardRequest{Spec: spec, First: 0, Count: 2})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// A corrupted rival: same range, tampered payload.
	var bad ShardResponse
	raw, _ := json.Marshal(good)
	if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	bad.Retried++

	tok1 := b.register(task, claimPrimary, "worker-001")
	tok2 := b.register(task, claimSpeculative, "worker-002")
	if _, won, err := b.complete(task, tok1, good); !won || err != nil {
		t.Fatalf("winner rejected: %v", err)
	}
	_, won, err := b.complete(task, tok2, &bad)
	if won || err == nil {
		t.Fatal("divergent result did not fail the campaign")
	}
	if b.failed() == nil {
		t.Error("board does not remember the integrity failure")
	}
	if c.integrityFailures.Load() != 1 {
		t.Errorf("integrityFailures = %d, want 1", c.integrityFailures.Load())
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Error("integrity failure did not abort the campaign context")
	}
}

// --- Speculative re-execution ---

// TestSpeculationRescuesStraggler hangs a worker on the first shard it
// receives; the speculation monitor re-dispatches that range and the
// campaign finishes byte-identical to standalone, with the win counted.
func TestSpeculationRescuesStraggler(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	ms := NewMembership(2)
	// Worker A: hangs its first shard until the coordinator cancels it;
	// serves normally afterwards.
	realA := NewWorker(2)
	var hung atomic.Int64
	muxA := http.NewServeMux()
	var first atomic.Bool
	muxA.HandleFunc(ShardPath, func(rw http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			// Drain the body: the server only watches for client
			// disconnect (cancelling r.Context) once the body is
			// consumed, and the coordinator's cancel is our release.
			io.Copy(io.Discard, r.Body)
			hung.Add(1)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		realA.ShardHandler().ServeHTTP(rw, r)
	})
	muxA.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) { rw.WriteHeader(http.StatusOK) })
	srvA := httptest.NewServer(muxA)
	t.Cleanup(srvA.Close)
	mustJoin(t, ms, srvA.URL)

	_, srvB := newWorkerServer(t, 2)
	mustJoin(t, ms, srvB.URL)

	c := NewCoordinator(Config{
		Members:             ms,
		SpeculationFactor:   1.0,
		SpeculationMinWait:  50 * time.Millisecond,
		SpeculationInterval: 10 * time.Millisecond,
	})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run with straggler: %v", err)
	}
	if hung.Load() == 0 {
		t.Skip("straggling worker never received a shard; placement sent everything elsewhere")
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("speculated result differs from standalone:\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.SpeculationsLaunched == 0 {
		t.Errorf("no speculation launched despite a hung shard: %+v", snap)
	}
	if snap.IntegrityFailures != 0 {
		t.Errorf("speculation caused integrity failures: %+v", snap)
	}
}

// TestSpeculativeDuplicateStorm forces every shard to be speculated by
// a hair-trigger detector against healthy workers: the campaign must
// stay byte-identical with every duplicate discarded, never erroring.
func TestSpeculativeDuplicateStorm(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	ms := NewMembership(4)
	for i := 0; i < 3; i++ {
		_, srv := newWorkerServer(t, 4)
		mustJoin(t, ms, srv.URL)
	}
	c := NewCoordinator(Config{
		Members:             ms,
		SpeculationFactor:   0.0001,
		SpeculationMinWait:  time.Nanosecond,
		SpeculationInterval: time.Millisecond,
	})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run under speculation storm: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("storm result differs from standalone:\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.IntegrityFailures != 0 {
		t.Errorf("duplicate storm produced integrity failures: %+v", snap)
	}
	// Primary claims losing to a speculative winner also land in
	// DuplicateResults, so the duplicate count can exceed — but never
	// trail — the speculative losses.
	if snap.DuplicateResults < snap.SpeculativeLosses {
		t.Errorf("speculative losses not all counted as duplicates: %+v", snap)
	}
}

// --- Cache gossip ---

// TestGossipAnswersWholeJob caches a result on a standalone node, lets
// the coordinator gossip its index, and checks the next campaign for
// the same fingerprint is answered from that cache byte-identically,
// with zero shards dispatched.
func TestGossipAnswersWholeJob(t *testing.T) {
	spec := tinySpec(t, 4)
	want := standaloneJSON(t, spec)

	// A node whose cache already holds the job.
	svc := service.New(service.Config{})
	t.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	sub, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("seed submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := svc.Get(sub.ID)
		if err != nil {
			t.Fatalf("seed get: %v", err)
		}
		if v.State == service.StateDone {
			break
		}
		if v.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("seed job did not finish: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(svc))
	mux.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) { rw.WriteHeader(http.StatusOK) })
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	ms := NewMembership(1)
	mustJoin(t, ms, srv.URL)
	c := NewCoordinator(Config{Members: ms, Client: srv.Client()})
	c.GossipOnce(context.Background(), time.Second)
	if snap := c.Snapshot(); snap.GossipEntries == 0 || snap.GossipSweeps != 1 {
		t.Fatalf("gossip sweep learned nothing: %+v", snap)
	}

	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("gossip-answered run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("gossip answer differs from standalone:\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.GossipAnswers != 1 {
		t.Errorf("job not answered from gossip: %+v", snap)
	}
	if snap.ShardsDispatched != 0 || snap.JobsSharded != 0 {
		t.Errorf("gossip answer still dispatched shards: %+v", snap)
	}
}

// TestGossipRejectsMismatchedFingerprint: a holder serving wrong bytes
// for a fingerprint must be ignored, not trusted.
func TestGossipRejectsMismatchedFingerprint(t *testing.T) {
	spec := tinySpec(t, 2)
	res := &service.Result{Fingerprint: "not-the-requested-one", Spec: spec}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+service.CacheResultsPrefix+"{fp}", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(res)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	if _, err := fetchCachedResult(context.Background(), srv.Client(), srv.URL, spec.Fingerprint()); err == nil {
		t.Fatal("mislabeled cached result was accepted")
	}
}

// --- Deadline parity (satellite a) ---

// TestLocalFallbackHonorsSpecTimeout: with no workers and no caller
// deadline, a Spec.TimeoutSec budget must still bound the local run —
// exactly as DeadlineHeader bounds a remote one.
func TestLocalFallbackHonorsSpecTimeout(t *testing.T) {
	spec := tinySpec(t, 64)
	spec.TimeoutSec = 0.002 // far less than 64 replicas need

	c := NewCoordinator(Config{Members: NewMembership(0)})
	start := time.Now()
	_, err := c.Run(context.Background(), spec)
	if err == nil {
		t.Fatal("local fallback ignored the spec timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want a deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timeout enforced only after %s", elapsed)
	}
}

// --- Observability (satellite b) ---

func TestCoordinatorMetricsExposeElasticCounters(t *testing.T) {
	c := NewCoordinator(Config{Members: NewMembership(0)})
	var buf strings.Builder
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, name := range []string{
		"scrubd_cluster_ring_version",
		"scrubd_cluster_steals_served_total",
		"scrubd_cluster_steals_won_total",
		"scrubd_cluster_steals_lost_total",
		"scrubd_cluster_speculations_launched_total",
		"scrubd_cluster_speculative_wins_total",
		"scrubd_cluster_speculative_losses_total",
		"scrubd_cluster_duplicate_results_total",
		"scrubd_cluster_integrity_failures_total",
		"scrubd_cluster_gossip_answers_total",
		"scrubd_cluster_gossip_age_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

func TestHealthzCarriesClusterState(t *testing.T) {
	c := NewCoordinator(Config{Members: NewMembership(0)})
	svc := service.New(service.Config{})
	t.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	h := service.NewHandlerWith(svc, service.HandlerConfig{
		Role:        "coordinator",
		LiveWorkers: c.Members().AliveCount,
		ClusterInfo: func() any { return c.Snapshot() },
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Role    string          `json:"role"`
		Cluster json.RawMessage `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if body.Role != "coordinator" || len(body.Cluster) == 0 {
		t.Fatalf("healthz lacks cluster state: %+v", body)
	}
	for _, key := range []string{"ring_version", "steals_won", "speculative_wins", "gossip_age_seconds"} {
		if !strings.Contains(string(body.Cluster), key) {
			t.Errorf("healthz cluster state missing %q: %s", key, body.Cluster)
		}
	}
}

// TestRingEndpoint exercises GET /v1/cluster/ring.
func TestRingEndpoint(t *testing.T) {
	ms := NewMembership(0)
	mustJoin(t, ms, "http://10.0.0.1:1")
	mustJoin(t, ms, "http://10.0.0.2:1")
	c := NewCoordinator(Config{Members: ms})
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)

	resp, err := srv.Client().Get(srv.URL + RingPath)
	if err != nil {
		t.Fatalf("GET ring: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Version uint64   `json:"version"`
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode ring: %v", err)
	}
	if body.Version != ms.RingVersion() || len(body.Members) != 2 {
		t.Errorf("ring endpoint = %+v, want version %d with 2 members", body, ms.RingVersion())
	}
}
