// Package cluster distributes replicated scrub-simulation jobs across
// scrubd nodes. A coordinator splits one fingerprinted job spec into
// per-replica seed-ranged shards, dispatches them over HTTP/JSON to
// registered worker nodes (bounded in-flight per worker), retries failed
// shards on different workers, falls back to local execution when no
// workers are live, and deterministically merges shard results — so a
// sharded run is statistically identical (same per-replica seeds, same
// merged aggregates, byte-identical result JSON) to a single-node run.
//
// The protocol is three endpoints:
//
//	POST /v1/cluster/join    worker → coordinator: announce {url}
//	GET  /v1/cluster/workers coordinator: membership listing
//	POST /v1/cluster/shards  coordinator → worker: execute a replica range
//
// plus the workers' ordinary /healthz, which the coordinator heartbeats.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sim"
)

// Protocol paths. Workers mount ShardPath; coordinators mount JoinPath,
// WorkersPath, StealPath, ClaimsPath, and RingPath; the heartbeat
// probes HealthPath.
const (
	ShardPath   = "/v1/cluster/shards"
	JoinPath    = "/v1/cluster/join"
	WorkersPath = "/v1/cluster/workers"
	StealPath   = "/v1/cluster/steal"
	ClaimsPath  = "/v1/cluster/claims"
	RingPath    = "/v1/cluster/ring"
	HealthPath  = "/healthz"
)

// ShardRequest asks a worker to execute replicas [First, First+Count) of
// the campaign described by the (normalised) Spec. Replica seeds derive
// from absolute indices, so the worker needs no other coordination
// state.
type ShardRequest struct {
	Spec  service.Spec `json:"spec"`
	First int          `json:"first"`
	Count int          `json:"count"`

	// deadline is the propagated campaign deadline (RFC 3339,
	// nanoseconds; "" = none). It travels out of band — the header on
	// pushed shards, the StealResponse field on pulled ones — and is
	// applied by Worker.execute.
	deadline string
}

// Validate checks the range against the spec's replica count.
func (r *ShardRequest) Validate() error {
	if r.First < 0 {
		return fmt.Errorf("cluster: shard first %d must be >= 0", r.First)
	}
	if r.Count < 1 {
		return fmt.Errorf("cluster: shard count %d must be >= 1", r.Count)
	}
	if r.First+r.Count > r.Spec.Replicas {
		return fmt.Errorf("cluster: shard [%d,+%d) exceeds %d replicas", r.First, r.Count, r.Spec.Replicas)
	}
	return nil
}

// ShardFailure is the wire form of one failed replica.
type ShardFailure struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// ShardResponse carries a completed shard back to the coordinator. The
// per-replica results are the full simulation results; every numeric
// field survives the JSON round trip exactly, which is what makes the
// merged campaign bit-identical to a local run.
type ShardResponse struct {
	First   int           `json:"first"`
	Count   int           `json:"count"`
	Results []*sim.Result `json:"results"`
	Retried int           `json:"retried"`
	// Failures lists replicas with no result (absolute indices).
	Failures []ShardFailure `json:"failures,omitempty"`
}

// NewShardResponse converts a core shard to wire form.
func NewShardResponse(sh *core.Shard) *ShardResponse {
	resp := &ShardResponse{
		First:   sh.First,
		Count:   sh.Count,
		Results: sh.Results,
		Retried: sh.Retried,
	}
	for _, f := range sh.Failures {
		resp.Failures = append(resp.Failures, ShardFailure{Index: f.Index, Error: f.Err.Error()})
	}
	return resp
}

// Shard converts the response back to a core shard, checking that the
// worker answered for the range that was requested.
func (r *ShardResponse) Shard(first, count int) (*core.Shard, error) {
	if r.First != first || r.Count != count {
		return nil, fmt.Errorf("cluster: worker answered shard [%d,+%d), requested [%d,+%d)",
			r.First, r.Count, first, count)
	}
	if len(r.Results) != count {
		return nil, fmt.Errorf("cluster: shard [%d,+%d) response carries %d results", first, count, len(r.Results))
	}
	sh := &core.Shard{
		First:   r.First,
		Count:   r.Count,
		Results: r.Results,
		Retried: r.Retried,
	}
	for _, f := range r.Failures {
		sh.Failures = append(sh.Failures, core.ReplicaFailure{Index: f.Index, Err: errors.New(f.Error)})
	}
	return sh, nil
}

// JoinRequest announces a worker's base URL to the coordinator.
type JoinRequest struct {
	URL string `json:"url"`
}
