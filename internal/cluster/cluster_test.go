package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// tinySpec is a fast, valid, normalised spec for cluster tests.
func tinySpec(t *testing.T, replicas int) service.Spec {
	t.Helper()
	s := service.Spec{
		Mechanism:  "basic",
		Workload:   "db-oltp",
		HorizonSec: 20000,
		Seed:       7,
		Replicas:   replicas,
		Geometry: &service.GeometrySpec{
			Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
			RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
		},
	}
	norm, err := s.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	return norm
}

// newWorkerServer starts an in-process worker node: the shard executor
// plus a /healthz the heartbeat can probe.
func newWorkerServer(t *testing.T, maxInFlight int) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(maxInFlight)
	mux := http.NewServeMux()
	mux.Handle(ShardPath, w.ShardHandler())
	mux.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return w, srv
}

func resultJSON(t *testing.T, res *service.Result) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(raw)
}

func standaloneJSON(t *testing.T, spec service.Spec) string {
	t.Helper()
	res, err := service.DefaultRunner(context.Background(), spec)
	if err != nil {
		t.Fatalf("standalone run: %v", err)
	}
	return resultJSON(t, res)
}

func mustJoin(t *testing.T, ms *Membership, url string) Member {
	t.Helper()
	m, err := ms.Join(url)
	if err != nil {
		t.Fatalf("Join(%q): %v", url, err)
	}
	return m
}

// TestClusterMatchesStandalone is the subsystem's core promise: a job
// sharded across three in-process workers merges to result JSON
// byte-identical to the single-node run of the same spec.
func TestClusterMatchesStandalone(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	ms := NewMembership(2)
	workers := make([]*Worker, 3)
	for i := range workers {
		w, srv := newWorkerServer(t, 2)
		workers[i] = w
		mustJoin(t, ms, srv.URL)
	}
	c := NewCoordinator(Config{Members: ms})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("cluster result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}

	snap := c.Snapshot()
	if snap.JobsSharded != 1 || snap.JobsLocal != 0 {
		t.Errorf("expected one sharded job, got %+v", snap)
	}
	if snap.ShardsCompleted == 0 || snap.ShardsCompleted != snap.ShardsDispatched {
		t.Errorf("expected all dispatched shards to complete, got %+v", snap)
	}
	var executed int64
	for _, w := range workers {
		executed += w.Snapshot().ShardsExecuted
	}
	if executed != snap.ShardsCompleted {
		t.Errorf("workers executed %d shards, coordinator completed %d", executed, snap.ShardsCompleted)
	}
	if executed < 2 {
		t.Errorf("expected the job to spread over workers, executed=%d", executed)
	}
}

// TestClusterFailoverOnWorkerCrash kills one worker (its connections
// drop mid-request) and checks its shards are re-dispatched to the
// survivors, the worker is declared dead, and the merged result is still
// byte-identical to the standalone run.
func TestClusterFailoverOnWorkerCrash(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	ms := NewMembership(2)
	for i := 0; i < 2; i++ {
		_, srv := newWorkerServer(t, 2)
		mustJoin(t, ms, srv.URL)
	}
	// The crashing worker accepts shard requests and drops the connection
	// mid-handling — the coordinator sees a transport error on a shard it
	// already dispatched, exactly as if the process died under load.
	var crashes atomic.Int64
	crashMux := http.NewServeMux()
	crashMux.HandleFunc(ShardPath, func(rw http.ResponseWriter, r *http.Request) {
		crashes.Add(1)
		panic(http.ErrAbortHandler)
	})
	crashMux.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	crashSrv := httptest.NewServer(crashMux)
	t.Cleanup(crashSrv.Close)
	crashed := mustJoin(t, ms, crashSrv.URL)

	c := NewCoordinator(Config{Members: ms})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster run with crashing worker: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("failover result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}
	if crashes.Load() == 0 {
		t.Fatal("crashing worker never received a shard; test proves nothing")
	}
	snap := c.Snapshot()
	if snap.ShardFailovers == 0 {
		t.Errorf("expected shard failovers, got %+v", snap)
	}
	for _, m := range ms.List() {
		if m.ID == crashed.ID && m.Alive {
			t.Errorf("crashed worker %s still marked alive", m.ID)
		}
	}
}

// TestClusterHTTPErrorExcludesWithoutDeath checks that a worker replying
// with an HTTP error (it is serving, just refusing) is excluded for the
// shard but not declared dead.
func TestClusterHTTPErrorExcludesWithoutDeath(t *testing.T) {
	spec := tinySpec(t, 4)
	want := standaloneJSON(t, spec)

	ms := NewMembership(4)
	_, srv := newWorkerServer(t, 4)
	mustJoin(t, ms, srv.URL)

	busyMux := http.NewServeMux()
	busyMux.HandleFunc(ShardPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Retry-After", "1")
		writeJSONError(rw, http.StatusTooManyRequests, errors.New("cluster: worker at capacity"))
	})
	busyMux.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	busySrv := httptest.NewServer(busyMux)
	t.Cleanup(busySrv.Close)
	busy := mustJoin(t, ms, busySrv.URL)

	c := NewCoordinator(Config{Members: ms})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster run with busy worker: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}
	for _, m := range ms.List() {
		if m.ID == busy.ID && !m.Alive {
			t.Errorf("busy worker %s wrongly declared dead", m.ID)
		}
	}
}

// TestClusterLocalFallbackNoWorkers runs a job with an empty membership:
// the coordinator executes it wholly locally and still matches the
// standalone result.
func TestClusterLocalFallbackNoWorkers(t *testing.T) {
	spec := tinySpec(t, 3)
	want := standaloneJSON(t, spec)

	c := NewCoordinator(Config{Members: NewMembership(0)})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("local-fallback run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("local-fallback result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.JobsLocal != 1 || snap.JobsSharded != 0 {
		t.Errorf("expected one local job, got %+v", snap)
	}
}

// TestClusterShardLocalFallbackAfterDeath kills the only worker after it
// joined: every shard's dispatch fails, the worker is declared dead, and
// the shards complete locally on the coordinator.
func TestClusterShardLocalFallbackAfterDeath(t *testing.T) {
	spec := tinySpec(t, 4)
	want := standaloneJSON(t, spec)

	ms := NewMembership(2)
	mux := http.NewServeMux()
	mux.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	mustJoin(t, ms, srv.URL)
	srv.Close() // the worker dies between joining and the job

	c := NewCoordinator(Config{Members: ms})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run after worker death: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.ShardsLocal == 0 {
		t.Errorf("expected local shard fallback, got %+v", snap)
	}
	if snap.WorkersAlive != 0 {
		t.Errorf("dead worker still counted alive: %+v", snap)
	}
}

// TestClusterRunCancellation checks a cancelled job context surfaces as
// an error rather than a bogus result.
func TestClusterRunCancellation(t *testing.T) {
	spec := tinySpec(t, 8)
	_, srv := newWorkerServer(t, 2)
	ms := NewMembership(2)
	mustJoin(t, ms, srv.URL)
	c := NewCoordinator(Config{Members: ms})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx, spec); err == nil {
		t.Fatal("expected error from cancelled cluster run")
	}
}

func TestMembershipJoinIdempotent(t *testing.T) {
	ms := NewMembership(0)
	a := mustJoin(t, ms, "http://10.0.0.1:8080")
	b := mustJoin(t, ms, "http://10.0.0.1:8080/")
	if a.ID != b.ID {
		t.Errorf("re-join minted a new ID: %s vs %s", a.ID, b.ID)
	}
	if ms.Size() != 1 {
		t.Errorf("Size() = %d, want 1", ms.Size())
	}
	ms.markDead(a.ID)
	if ms.AliveCount() != 0 {
		t.Fatalf("AliveCount() = %d after markDead", ms.AliveCount())
	}
	mustJoin(t, ms, "http://10.0.0.1:8080")
	if ms.AliveCount() != 1 {
		t.Errorf("re-join did not revive the worker")
	}
}

func TestMembershipJoinRejectsBadURL(t *testing.T) {
	ms := NewMembership(0)
	for _, bad := range []string{"", "not-a-url", "10.0.0.1:8080", "/relative"} {
		if _, err := ms.Join(bad); err == nil {
			t.Errorf("Join(%q) accepted an invalid URL", bad)
		}
	}
}

func TestMembershipAcquire(t *testing.T) {
	ms := NewMembership(1)
	ctx := context.Background()

	if _, _, err := ms.acquire(ctx, nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("acquire on empty membership = %v, want ErrNoWorkers", err)
	}

	a := mustJoin(t, ms, "http://10.0.0.1:1")
	b := mustJoin(t, ms, "http://10.0.0.2:1")

	// Least-loaded first, ties by ID.
	id1, _, err := ms.acquire(ctx, nil)
	if err != nil || id1 != a.ID {
		t.Fatalf("first acquire = %q, %v; want %q", id1, err, a.ID)
	}
	id2, _, err := ms.acquire(ctx, nil)
	if err != nil || id2 != b.ID {
		t.Fatalf("second acquire = %q, %v; want %q", id2, err, b.ID)
	}

	// All at capacity: acquire blocks until a release.
	got := make(chan string, 1)
	go func() {
		id, _, err := ms.acquire(ctx, nil)
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- id
	}()
	select {
	case id := <-got:
		t.Fatalf("acquire returned %q while all workers at capacity", id)
	case <-time.After(20 * time.Millisecond):
	}
	ms.release(b.ID)
	select {
	case id := <-got:
		if id != b.ID {
			t.Errorf("blocked acquire got %q, want %q", id, b.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire still blocked after release")
	}

	// Excluding every worker yields ErrNoWorkers, not a deadlock.
	ms.release(a.ID)
	if _, _, err := ms.acquire(ctx, map[string]bool{a.ID: true, b.ID: true}); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("acquire with all excluded = %v, want ErrNoWorkers", err)
	}

	// Cancellation unblocks a waiter. b's slot is still held by the
	// goroutine above; re-acquiring a fills the other slot.
	_, _, _ = ms.acquire(ctx, nil)
	cctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := ms.acquire(cctx, nil)
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
}

func TestMembershipCheckOnce(t *testing.T) {
	ms := NewMembership(0)
	var healthy atomic.Bool
	healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			rw.WriteHeader(http.StatusOK)
			return
		}
		rw.WriteHeader(http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	mustJoin(t, ms, srv.URL)

	ms.CheckOnce(context.Background(), srv.Client(), time.Second)
	if ms.AliveCount() != 1 {
		t.Fatalf("healthy worker marked dead")
	}
	healthy.Store(false)
	ms.CheckOnce(context.Background(), srv.Client(), time.Second)
	if ms.AliveCount() != 0 {
		t.Fatalf("unhealthy worker still alive")
	}
	if ms.HeartbeatFailures() == 0 {
		t.Errorf("heartbeat failure not counted")
	}
	healthy.Store(true)
	ms.CheckOnce(context.Background(), srv.Client(), time.Second)
	if ms.AliveCount() != 1 {
		t.Errorf("recovered worker not revived by heartbeat")
	}
}

func TestCoordinatorHandlerJoinAndList(t *testing.T) {
	ms := NewMembership(0)
	c := NewCoordinator(Config{Members: ms})
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)

	if err := Join(context.Background(), srv.Client(), srv.URL, "http://10.9.9.9:7777"); err != nil {
		t.Fatalf("Join via HTTP: %v", err)
	}
	resp, err := srv.Client().Get(srv.URL + WorkersPath)
	if err != nil {
		t.Fatalf("GET workers: %v", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Workers []Member `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decode workers: %v", err)
	}
	if len(listing.Workers) != 1 || listing.Workers[0].URL != "http://10.9.9.9:7777" {
		t.Errorf("workers listing = %+v", listing.Workers)
	}

	// A join with an unparseable URL is a client error, not a crash.
	if err := Join(context.Background(), srv.Client(), srv.URL, "::bad::"); err == nil {
		t.Error("join with bad URL succeeded")
	}
}

func TestWorkerRejectsAtCapacity(t *testing.T) {
	// maxInFlight=1 and a first request parked in the semaphore would need
	// a blocking simulation; instead exercise the admission check directly
	// by filling the semaphore.
	w := NewWorker(1)
	w.sem <- struct{}{}
	defer func() { <-w.sem }()

	spec := tinySpec(t, 2)
	body, _ := json.Marshal(ShardRequest{Spec: spec, First: 0, Count: 2})
	req := httptest.NewRequest(http.MethodPost, ShardPath, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	w.ShardHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if w.Snapshot().ShardsRejected != 1 {
		t.Errorf("rejection not counted: %+v", w.Snapshot())
	}
}

func TestWorkerRejectsBadShardRange(t *testing.T) {
	w := NewWorker(1)
	spec := tinySpec(t, 2)
	for _, rg := range []ShardRequest{
		{Spec: spec, First: -1, Count: 2},
		{Spec: spec, First: 0, Count: 0},
		{Spec: spec, First: 1, Count: 2}, // exceeds 2 replicas
	} {
		body, _ := json.Marshal(rg)
		req := httptest.NewRequest(http.MethodPost, ShardPath, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		w.ShardHandler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("shard [%d,+%d): status = %d, want 400", rg.First, rg.Count, rec.Code)
		}
	}
}

func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []shardRange
	}{
		{8, 3, []shardRange{{0, 3}, {3, 3}, {6, 2}}},
		{4, 8, []shardRange{{0, 1}, {1, 1}, {2, 1}, {3, 1}}},
		{5, 1, []shardRange{{0, 5}}},
		{6, 0, []shardRange{{0, 6}}},
	}
	for _, tc := range cases {
		got := planShards(tc.n, tc.shards)
		if len(got) != len(tc.want) {
			t.Errorf("planShards(%d,%d) = %v, want %v", tc.n, tc.shards, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("planShards(%d,%d)[%d] = %v, want %v", tc.n, tc.shards, i, got[i], tc.want[i])
			}
		}
	}
}

func TestShardResponseValidatesEcho(t *testing.T) {
	resp := &ShardResponse{First: 2, Count: 3, Results: make([]*sim.Result, 3)}
	if _, err := resp.Shard(2, 3); err != nil {
		t.Errorf("matching echo rejected: %v", err)
	}
	if _, err := resp.Shard(0, 3); err == nil {
		t.Error("mismatched first accepted")
	}
	if _, err := resp.Shard(2, 4); err == nil {
		t.Error("mismatched count accepted")
	}
	short := &ShardResponse{First: 2, Count: 3, Results: make([]*sim.Result, 2)}
	if _, err := short.Shard(2, 3); err == nil {
		t.Error("short results slice accepted")
	}
}
