package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// StealResponse hands a pending shard to an idle worker. Token is the
// claim's idempotency key: the worker posts its result to ClaimsPath
// under it, and the coordinator accepts each token's result at most
// once. Deadline (RFC 3339, nanoseconds; empty = none) propagates the
// campaign budget exactly as DeadlineHeader does on pushed shards.
type StealResponse struct {
	Token    string       `json:"token"`
	Shard    ShardRequest `json:"shard"`
	Deadline string       `json:"deadline,omitempty"`
}

// ClaimResult returns a stolen shard's outcome to the coordinator.
type ClaimResult struct {
	Token    string         `json:"token"`
	Response *ShardResponse `json:"response"`
}

// ClaimAck is the coordinator's verdict on a delivered claim result.
// Accepted=false means the token is unknown (the campaign finished or
// the claim was forgotten) — the worker just drops the work, which is
// safe because some other claim owns the range. Won=false on an
// accepted token means another claim's byte-identical result landed
// first; the duplicate was discarded.
type ClaimAck struct {
	Accepted bool `json:"accepted"`
	Won      bool `json:"won"`
}

// StealOnce asks a coordinator for one pending shard. It returns
// (nil, "", nil) when nothing is stealable right now (HTTP 204).
func StealOnce(ctx context.Context, client *http.Client, coordinatorURL, selfURL string) (*ShardRequest, string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(JoinRequest{URL: selfURL})
	if err != nil {
		return nil, "", fmt.Errorf("cluster: encode steal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(coordinatorURL, "/")+StealPath, bytes.NewReader(body))
	if err != nil {
		return nil, "", fmt.Errorf("cluster: build steal request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: steal: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, "", nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", &StatusError{Code: resp.StatusCode, Msg: readErrorBody(resp.Body)}
	}
	var sr StealResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, "", fmt.Errorf("cluster: decode steal response: %w", err)
	}
	if sr.Deadline != "" {
		// The deadline rides back to the caller through the request so the
		// executing context can be bounded; parse errors fail the steal.
		if _, err := time.Parse(time.RFC3339Nano, sr.Deadline); err != nil {
			return nil, "", fmt.Errorf("cluster: bad steal deadline %q: %v", sr.Deadline, err)
		}
		sr.Shard.deadline = sr.Deadline
	}
	return &sr.Shard, sr.Token, nil
}

// DeliverClaim posts a stolen shard's result back to the coordinator.
func DeliverClaim(ctx context.Context, client *http.Client, coordinatorURL, token string, resp *ShardResponse) (ClaimAck, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(ClaimResult{Token: token, Response: resp})
	if err != nil {
		return ClaimAck{}, fmt.Errorf("cluster: encode claim result: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(coordinatorURL, "/")+ClaimsPath, bytes.NewReader(body))
	if err != nil {
		return ClaimAck{}, fmt.Errorf("cluster: build claim delivery: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := client.Do(req)
	if err != nil {
		return ClaimAck{}, fmt.Errorf("cluster: deliver claim: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return ClaimAck{}, &StatusError{Code: httpResp.StatusCode, Msg: readErrorBody(httpResp.Body)}
	}
	var ack ClaimAck
	if err := json.NewDecoder(httpResp.Body).Decode(&ack); err != nil {
		return ClaimAck{}, fmt.Errorf("cluster: decode claim ack: %w", err)
	}
	return ack, nil
}

// StealLoop turns a worker node into an active thief: whenever the
// worker has a free execution slot it polls the coordinator for a
// pending shard, executes it, and delivers the result under the claim
// token. Steals are pull-based, so a straggling or overloaded fleet
// drains through whichever nodes have headroom without the coordinator
// tracking idleness. Runs until ctx ends; logf (may be nil) receives
// failures.
func (w *Worker) StealLoop(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		// Reserve a slot before asking for work: a steal must never make
		// the worker reject the coordinator's own pushed shards.
		select {
		case w.sem <- struct{}{}:
		default:
			continue // saturated; nothing to offer
		}
		w.stealShard(ctx, client, coordinatorURL, selfURL, logf)
		<-w.sem
	}
}

// stealShard performs one steal attempt with an already-reserved
// execution slot.
func (w *Worker) stealShard(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, logf func(format string, args ...any)) {
	req, token, err := StealOnce(ctx, client, coordinatorURL, selfURL)
	if err != nil {
		if ctx.Err() == nil {
			logf("cluster: steal poll failed: %v", err)
		}
		return
	}
	if req == nil {
		return // nothing pending
	}
	w.stealsClaimed.Add(1)
	resp, err := w.execute(ctx, req)
	if err != nil {
		// The claim is simply abandoned: the primary dispatcher still owns
		// the range and idempotent completion means nothing is lost.
		if ctx.Err() == nil {
			logf("cluster: stolen shard [%d,+%d) failed: %v", req.First, req.Count, err)
		}
		return
	}
	ack, err := DeliverClaim(ctx, client, coordinatorURL, token, resp)
	if err != nil {
		if ctx.Err() == nil {
			logf("cluster: claim delivery failed: %v", err)
		}
		return
	}
	w.stealsExecuted.Add(1)
	if ack.Won {
		w.stealsWon.Add(1)
	}
}
