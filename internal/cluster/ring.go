package cluster

import (
	"hash/fnv"
	"sort"
)

// RingVnodes is how many virtual nodes each member contributes to the
// consistent-hash ring. More vnodes smooth the load split between
// members; 64 keeps the per-member imbalance under a few percent for
// the fleet sizes scrubd targets while the ring stays tiny.
const RingVnodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is an immutable consistent-hash ring over member IDs. Shard
// placement hashes a key (spec fingerprint + replica range) onto the
// ring and walks clockwise: the first member owns the shard, the rest
// are the deterministic failover/steal order. Because only the members
// present on the ring define the point set, membership churn remaps
// only the arcs adjacent to the changed member — every other key keeps
// its owner, which is what keeps cache entries co-located with repeat
// shards across scale events.
//
// A Ring is built by Membership on demand and cached per membership
// epoch; Version identifies the build.
type Ring struct {
	version uint64
	points  []ringPoint
	members []string
}

// ringHash is FNV-1a 64: stable across processes and platforms (the
// placement must agree between coordinator incarnations), cheap, and
// good enough mixing for placement.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// newRing builds a ring at the given version over the member IDs.
// Points sort by (hash, id) — the id tie-break makes the ring
// deterministic even in the astronomically unlikely event of a vnode
// hash collision between members.
func newRing(version uint64, ids []string) *Ring {
	r := &Ring{version: version, members: append([]string(nil), ids...)}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(ids)*RingVnodes)
	var buf [8]byte
	for _, id := range r.members {
		for v := 0; v < RingVnodes; v++ {
			buf[0] = byte(v)
			buf[1] = byte(v >> 8)
			r.points = append(r.points, ringPoint{hash: ringHash(id + "#" + string(buf[:2])), id: id})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].id < r.points[b].id
	})
	return r
}

// Version identifies the membership epoch the ring was built from.
func (r *Ring) Version() uint64 { return r.version }

// Members returns the member IDs on the ring, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Sequence returns every distinct member in ring order starting at the
// key's successor point: element 0 is the key's owner, the rest are the
// failover order. An empty ring returns nil.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(seq) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			seq = append(seq, p.id)
		}
	}
	return seq
}

// Owner returns the key's owning member ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// shardKey is the ring placement key for one replica range of a
// fingerprinted campaign. Folding the range in spreads a multi-shard
// campaign over the fleet while keeping each identical (fingerprint,
// range) pair pinned to the same arc across campaigns — which is what
// lands repeat shards where their cache entries already live.
func shardKey(fingerprint string, first, count int) string {
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(first >> (8 * i))
		buf[8+i] = byte(count >> (8 * i))
	}
	return fingerprint + "/" + string(buf[:])
}
