package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster/chaosproxy"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/service"
)

// chaosMembership is tuned for chaos tests: a short breaker cooldown so
// tripped workers probe again within the test, and a low threshold so
// the breaker actually participates.
func chaosMembership() *Membership {
	return NewMembershipWith(MembershipConfig{
		PerWorkerInFlight: 2,
		BreakerThreshold:  2,
		BreakerCooldown:   100 * time.Millisecond,
	})
}

// fastCoordinator keeps retry backoff tiny and deterministic.
func fastCoordinator(ms *Membership, client *http.Client) *Coordinator {
	return NewCoordinator(Config{
		Members:   ms,
		Client:    client,
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		RetrySeed: 1,
	})
}

// TestClusterChaosFaultyProxy routes one of two workers through a
// fault-injecting proxy that drops, resets, and delays connections. The
// merged result must stay byte-identical to the standalone run no matter
// which faults fire.
func TestClusterChaosFaultyProxy(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	ms := chaosMembership()
	_, healthy := newWorkerServer(t, 2)
	mustJoin(t, ms, healthy.URL)

	_, flakySrv := newWorkerServer(t, 2)
	proxy, err := chaosproxy.New(flakySrv.Listener.Addr().String(), 42)
	if err != nil {
		t.Fatalf("chaosproxy.New: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })
	proxy.SetPlan(chaosproxy.Plan{Pass: 1, Drop: 2, Reset: 2, Delay: 1, Latency: 5 * time.Millisecond})
	mustJoin(t, ms, proxy.URL())

	c := fastCoordinator(ms, &http.Client{Timeout: 10 * time.Second})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("chaos result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}
	snap := proxy.Snapshot()
	if snap.Dropped+snap.Resets+snap.Delayed == 0 {
		t.Errorf("proxy injected no faults (%+v); test proves nothing", snap)
	}
}

// TestClusterChaosBlackholedWorker blackholes every connection to one
// worker: requests hang instead of erroring. The coordinator's HTTP
// client deadline turns the hang into a transport failure, the breaker
// trips, and the campaign completes correctly on the healthy worker.
func TestClusterChaosBlackholedWorker(t *testing.T) {
	spec := tinySpec(t, 6)
	want := standaloneJSON(t, spec)

	ms := chaosMembership()
	_, healthy := newWorkerServer(t, 2)
	mustJoin(t, ms, healthy.URL)

	_, holedSrv := newWorkerServer(t, 2)
	proxy, err := chaosproxy.New(holedSrv.Listener.Addr().String(), 7)
	if err != nil {
		t.Fatalf("chaosproxy.New: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })
	proxy.SetPlan(chaosproxy.Plan{Blackhole: 1})
	holed := mustJoin(t, ms, proxy.URL())

	client := &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: time.Second}}
	c := fastCoordinator(ms, client)
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("blackhole run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("blackhole result JSON differs from standalone:\n got %s\nwant %s", got, want)
	}
	if proxy.Snapshot().Blackhole == 0 {
		t.Error("no connection was blackholed; test proves nothing")
	}
	// The hung worker took at least one transport failure.
	for _, m := range ms.List() {
		if m.ID == holed.ID && m.Retries == 0 {
			t.Errorf("blackholed worker has no recorded retries: %+v", m)
		}
	}
}

// TestClusterChaosWorkerRestartMidCampaign kills a worker's proxy path
// mid-campaign (reset storm), then heals it: shards fail over, the
// breaker trips and later re-admits the worker, and the merged result is
// still exact.
func TestClusterChaosWorkerRestartMidCampaign(t *testing.T) {
	spec := tinySpec(t, 8)
	want := standaloneJSON(t, spec)

	ms := chaosMembership()
	_, healthy := newWorkerServer(t, 2)
	mustJoin(t, ms, healthy.URL)

	_, victimSrv := newWorkerServer(t, 2)
	proxy, err := chaosproxy.New(victimSrv.Listener.Addr().String(), 99)
	if err != nil {
		t.Fatalf("chaosproxy.New: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })
	victim := mustJoin(t, ms, proxy.URL())

	// Crash: every connection to the victim resets.
	proxy.SetPlan(chaosproxy.Plan{Reset: 1})
	c := fastCoordinator(ms, &http.Client{Timeout: 10 * time.Second})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run during reset storm: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("reset-storm result differs from standalone:\n got %s\nwant %s", got, want)
	}

	// Restart: the proxy heals and the heartbeat revives the victim; the
	// breaker half-opens after its cooldown and closes on the probe.
	proxy.SetPlan(chaosproxy.Plan{Pass: 1})
	ms.CheckOnce(context.Background(), nil, time.Second)
	time.Sleep(150 * time.Millisecond) // past the breaker cooldown
	res, err = c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run after heal: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("post-heal result differs from standalone:\n got %s\nwant %s", got, want)
	}
	if st := ms.BreakerStates()[victim.ID]; st == BreakerOpen {
		t.Errorf("healed worker's breaker still open")
	}
}

// TestClusterChaosElasticScaleEvents is the elastic-cluster acceptance
// pin: a campaign on a 3-worker fleet survives one worker dying
// mid-shard (scale-down), one worker joining mid-campaign (scale-up),
// and one straggling shard rescued by speculative re-execution — all
// with the straggler behind a seeded fault-injecting proxy — and still
// merges to result JSON byte-identical to the single-node run.
func TestClusterChaosElasticScaleEvents(t *testing.T) {
	spec := tinySpec(t, 12)
	want := standaloneJSON(t, spec)

	ms := chaosMembership()

	// Worker C exists from the start but joins only mid-campaign, the
	// moment the straggler event fires.
	_, srvC := newWorkerServer(t, 2)

	// Worker A sits behind a seeded chaos proxy (seed 4: the first
	// connection draws Delay, so fault injection is guaranteed) and
	// hangs the first shard it receives until the coordinator cancels
	// it — the campaign's designated straggler.
	realA := NewWorker(2)
	var hungA atomic.Int64
	var firstA atomic.Bool
	muxA := http.NewServeMux()
	muxA.HandleFunc(ShardPath, func(rw http.ResponseWriter, r *http.Request) {
		if firstA.CompareAndSwap(false, true) {
			// The straggler is now stuck: scale up, mid-campaign.
			if _, err := ms.Join(srvC.URL); err != nil {
				t.Errorf("mid-campaign join: %v", err)
			}
			// Drain the body so the server watches for client
			// disconnect; the coordinator's cancel is the release.
			io.Copy(io.Discard, r.Body)
			hungA.Add(1)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		realA.ShardHandler().ServeHTTP(rw, r)
	})
	muxA.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) { rw.WriteHeader(http.StatusOK) })
	srvA := httptest.NewServer(muxA)
	t.Cleanup(srvA.Close)
	proxyA, err := chaosproxy.New(srvA.Listener.Addr().String(), 4)
	if err != nil {
		t.Fatalf("chaosproxy.New: %v", err)
	}
	t.Cleanup(func() { proxyA.Close() })
	proxyA.SetPlan(chaosproxy.Plan{Pass: 1, Delay: 1, Latency: 10 * time.Millisecond})
	mustJoin(t, ms, proxyA.URL())

	// Worker B dies mid-shard: every shard request resets as if the
	// process were killed while executing (scale-down).
	muxB := http.NewServeMux()
	muxB.HandleFunc(ShardPath, func(rw http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	muxB.HandleFunc(HealthPath, func(rw http.ResponseWriter, r *http.Request) { rw.WriteHeader(http.StatusOK) })
	srvB := httptest.NewServer(muxB)
	t.Cleanup(srvB.Close)
	memberB := mustJoin(t, ms, srvB.URL)

	c := NewCoordinator(Config{
		Members: ms,
		// Fresh connections per dispatch so every request draws its own
		// chaos verdict.
		Client:              &http.Client{Timeout: 10 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}},
		RetryBase:           time.Millisecond,
		RetryMax:            10 * time.Millisecond,
		RetrySeed:           1,
		SpeculationFactor:   1.0,
		SpeculationMinWait:  50 * time.Millisecond,
		SpeculationInterval: 5 * time.Millisecond,
	})
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("elastic chaos run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("scale-event result differs from standalone:\n got %s\nwant %s", got, want)
	}

	if hungA.Load() == 0 {
		t.Error("no shard ever straggled on worker A")
	}
	snap := c.Snapshot()
	if snap.SpeculationsLaunched == 0 || snap.SpeculativeWins == 0 {
		t.Errorf("straggler was not rescued by speculation: %+v", snap)
	}
	if snap.IntegrityFailures != 0 {
		t.Errorf("scale events caused integrity failures: %+v", snap)
	}
	if snap.RingVersion != 3 {
		t.Errorf("ring version = %d, want 3 (two boot joins + one mid-campaign)", snap.RingVersion)
	}
	for _, m := range ms.List() {
		if m.ID == memberB.ID && m.Alive {
			t.Error("worker killed mid-shard is still marked alive")
		}
	}
	if pc := proxyA.Snapshot(); pc.Delayed == 0 {
		t.Errorf("chaos proxy injected no faults (%+v); test proves nothing", pc)
	}
}

// recordingShardLog builds a ShardLog that captures plan and shard-done
// records, standing in for the journal.
type recordingShardLog struct {
	mu     sync.Mutex
	plan   []journal.ShardRange
	shards map[journal.ShardRange]json.RawMessage
	sl     *service.ShardLog
}

func newRecordingShardLog(resumePlan []journal.ShardRange, checkpoints map[journal.ShardRange]json.RawMessage) *recordingShardLog {
	r := &recordingShardLog{shards: make(map[journal.ShardRange]json.RawMessage)}
	r.sl = &service.ShardLog{
		Plan:        resumePlan,
		Checkpoints: checkpoints,
		RecordPlan: func(plan []journal.ShardRange) {
			r.mu.Lock()
			r.plan = append([]journal.ShardRange(nil), plan...)
			r.mu.Unlock()
		},
		RecordShard: func(rg journal.ShardRange, payload []byte) {
			r.mu.Lock()
			r.shards[rg] = append([]byte(nil), payload...)
			r.mu.Unlock()
		},
	}
	return r
}

// TestClusterFreshJobJournalsPlanAndShards checks the durability hooks on
// a clean run: the plan is recorded once, and every shard's wire payload
// is recorded under its range.
func TestClusterFreshJobJournalsPlanAndShards(t *testing.T) {
	spec := tinySpec(t, 8)
	ms := NewMembership(2)
	_, srv := newWorkerServer(t, 4)
	mustJoin(t, ms, srv.URL)

	rec := newRecordingShardLog(nil, nil)
	ctx := service.WithShardLog(context.Background(), rec.sl)
	c := NewCoordinator(Config{Members: ms})
	if _, err := c.Run(ctx, spec); err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.plan) == 0 {
		t.Fatal("no shard plan recorded")
	}
	total := 0
	for _, rg := range rec.plan {
		total += rg.Count
		if _, ok := rec.shards[rg]; !ok {
			t.Errorf("no checkpoint recorded for shard %+v", rg)
		}
	}
	if total != spec.Replicas {
		t.Errorf("recorded plan covers %d replicas, want %d", total, spec.Replicas)
	}
}

// TestClusterResumeByteIdentity is the crash-recovery acceptance pin: a
// campaign resumed from a journaled plan plus one completed shard
// checkpoint merges to result JSON byte-identical to an uninterrupted
// standalone run — and the checkpointed range is not re-executed.
func TestClusterResumeByteIdentity(t *testing.T) {
	spec := tinySpec(t, 6)
	want := standaloneJSON(t, spec)

	// The "pre-crash" incarnation completed shard [0,3) for real.
	sys, mech, wl, err := spec.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	plan := []journal.ShardRange{{First: 0, Count: 3}, {First: 3, Count: 3}}
	sh, err := core.RunShardContext(context.Background(), sys, mech, wl, 0, 3)
	if err != nil {
		t.Fatalf("pre-crash shard: %v", err)
	}
	payload, err := json.Marshal(NewShardResponse(sh))
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}

	// The post-crash incarnation has no workers at all: the journaled
	// plan must still be honoured (checkpoint reused, remainder local).
	rec := newRecordingShardLog(plan, map[journal.ShardRange]json.RawMessage{plan[0]: payload})
	ctx := service.WithShardLog(context.Background(), rec.sl)
	c := NewCoordinator(Config{Members: NewMembership(0)})
	res, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("resumed result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.JobsResumed != 1 {
		t.Errorf("JobsResumed = %d, want 1", snap.JobsResumed)
	}
	if snap.ShardsResumed != 1 {
		t.Errorf("ShardsResumed = %d, want 1 (the checkpointed range)", snap.ShardsResumed)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if _, reRecorded := rec.shards[plan[0]]; reRecorded {
		t.Error("checkpointed shard was re-recorded (and so re-executed)")
	}
	if _, ok := rec.shards[plan[1]]; !ok {
		t.Error("freshly executed shard was not checkpointed")
	}
}

// TestClusterResumeSurvivesCorruptCheckpoint feeds a resumed job one
// garbage checkpoint: the shard silently recomputes and the result stays
// exact.
func TestClusterResumeSurvivesCorruptCheckpoint(t *testing.T) {
	spec := tinySpec(t, 4)
	want := standaloneJSON(t, spec)

	plan := []journal.ShardRange{{First: 0, Count: 2}, {First: 2, Count: 2}}
	rec := newRecordingShardLog(plan, map[journal.ShardRange]json.RawMessage{
		plan[0]: json.RawMessage(`{"first":0,"count":99,"results":null}`), // range mismatch
		plan[1]: json.RawMessage(`not json at all`),
	})
	ctx := service.WithShardLog(context.Background(), rec.sl)
	c := NewCoordinator(Config{Members: NewMembership(0)})
	res, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatalf("resumed run with corrupt checkpoints: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("result differs after corrupt-checkpoint recompute:\n got %s\nwant %s", got, want)
	}
	if c.Snapshot().ShardsResumed != 0 {
		t.Errorf("corrupt checkpoints were counted as resumed: %+v", c.Snapshot())
	}
}

// TestClusterServiceJournalEndToEnd wires journal → service → coordinator
// together: incarnation one journals a campaign mid-flight (plan plus one
// shard checkpoint, crafted as the daemon would have), incarnation two
// recovers through service.Recover and completes the job through a
// coordinator runner, and the served result matches the standalone run
// byte for byte.
func TestClusterServiceJournalEndToEnd(t *testing.T) {
	spec := tinySpec(t, 6)
	want := standaloneJSON(t, spec)
	dir := t.TempDir()

	sys, mech, wl, err := spec.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	plan := []journal.ShardRange{{First: 0, Count: 3}, {First: 3, Count: 3}}
	sh, err := core.RunShardContext(context.Background(), sys, mech, wl, 0, 3)
	if err != nil {
		t.Fatalf("pre-crash shard: %v", err)
	}
	payload, err := json.Marshal(NewShardResponse(sh))
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	jn, _, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	specJSON, _ := json.Marshal(spec)
	for _, r := range []journal.Record{
		{Type: journal.TypeSubmitted, Job: "job-000001", Fingerprint: spec.Fingerprint(), Spec: specJSON},
		{Type: journal.TypeStarted, Job: "job-000001"},
		{Type: journal.TypePlan, Job: "job-000001", Plan: plan},
		{Type: journal.TypeShardDone, Job: "job-000001", Shard: &plan[0], Payload: payload},
	} {
		if err := jn.Append(r); err != nil {
			t.Fatalf("append %s: %v", r.Type, err)
		}
	}
	jn.Close() // the crash

	jn2, recov, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer jn2.Close()
	c := NewCoordinator(Config{Members: NewMembership(0)})
	svc := service.New(service.Config{Workers: 1, Runner: c.Runner(), Journal: jn2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	if n, err := svc.Recover(recov); err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1", n, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := svc.Get("job-000001")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v.State == service.StateDone {
			var res service.Result
			if err := json.Unmarshal(v.Result, &res); err != nil {
				t.Fatalf("unmarshal recovered result: %v", err)
			}
			if got := string(v.Result); got != want {
				t.Errorf("recovered job result differs from uninterrupted run:\n got %s\nwant %s", got, want)
			}
			break
		}
		if v.State.Terminal() {
			t.Fatalf("recovered job ended %q: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Snapshot().ShardsResumed != 1 {
		t.Errorf("ShardsResumed = %d, want 1", c.Snapshot().ShardsResumed)
	}
}
