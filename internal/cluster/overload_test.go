package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/service"
)

// postShard posts one shard request and returns the raw response.
func postShardRaw(t *testing.T, url string, req ShardRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWorkerBodyLimit pins the shard-request body cap: an oversized
// request earns 413 before any simulation work happens.
func TestWorkerBodyLimit(t *testing.T) {
	w := NewWorker(1)
	w.MaxBodyBytes = 512
	ts := httptest.NewServer(w.ShardHandler())
	defer ts.Close()

	huge := fmt.Sprintf(`{"spec":{"workload":%q},"first":0,"count":1}`,
		strings.Repeat("x", 4096))
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized shard request: %d, want 413", resp.StatusCode)
	}
	if got := w.Snapshot().ShardsExecuted; got != 0 {
		t.Fatalf("oversized request executed %d shards", got)
	}
}

// TestWorkerClassScaledRetryAfter pins class-aware back-pressure: a
// worker at capacity invites a batch shard back twice as late as an
// interactive one carrying the same occupancy.
func TestWorkerClassScaledRetryAfter(t *testing.T) {
	w := NewWorker(1)
	w.sem <- struct{}{} // occupy the only slot
	defer func() { <-w.sem }()
	ts := httptest.NewServer(w.ShardHandler())
	defer ts.Close()

	retryAfter := func(priority string) int {
		spec := tinySpec(t, 2)
		spec.Priority = priority
		resp := postShardRaw(t, ts.URL, ShardRequest{Spec: spec, First: 0, Count: 1})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("priority %q at capacity: %d, want 429", priority, resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("priority %q 429 without Retry-After", priority)
		}
		sec, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("priority %q Retry-After %q: %v", priority, ra, err)
		}
		return sec
	}

	interactive := retryAfter(service.PriorityInteractive)
	batch := retryAfter(service.PriorityBatch)
	if batch != 2*interactive {
		t.Fatalf("batch Retry-After %ds vs interactive %ds, want exactly double", batch, interactive)
	}
	if got := w.Snapshot().ShardsRejected; got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
}

// TestWorkerPerClassCounters pins the executed-shard class split.
func TestWorkerPerClassCounters(t *testing.T) {
	w := NewWorker(2)
	ts := httptest.NewServer(w.ShardHandler())
	defer ts.Close()

	spec := tinySpec(t, 2)
	spec.Priority = service.PriorityInteractive
	resp := postShardRaw(t, ts.URL, ShardRequest{Spec: spec, First: 0, Count: 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive shard: %d, want 200", resp.StatusCode)
	}
	snap := w.Snapshot()
	if snap.ShardsInteractive != 1 || snap.ShardsBatch != 0 {
		t.Fatalf("class split interactive %d batch %d, want 1/0", snap.ShardsInteractive, snap.ShardsBatch)
	}
}
