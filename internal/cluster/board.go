package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/service"
)

// claimKind labels who is executing a shard claim; it routes the
// win/loss counters when claims race.
type claimKind int

const (
	// claimPrimary is the coordinator's own ring-placed dispatch.
	claimPrimary claimKind = iota
	// claimLocal is the coordinator executing the shard itself.
	claimLocal
	// claimSteal is an idle worker that pulled the shard via StealPath.
	claimSteal
	// claimSpeculative is a re-dispatch of a straggling shard.
	claimSpeculative
)

func (k claimKind) String() string {
	switch k {
	case claimPrimary:
		return "primary"
	case claimLocal:
		return "local"
	case claimSteal:
		return "steal"
	case claimSpeculative:
		return "speculative"
	}
	return "unknown"
}

// claim is one in-flight execution attempt on a shard task. Tokens are
// minted per claim and are the idempotency key of result delivery: a
// result is only accepted under a token the board issued, the first
// accepted result wins, and every later result is checked byte-for-byte
// against the winner.
type claim struct {
	token  string
	kind   claimKind
	worker string // member ID, steal worker URL, or "coordinator"
	start  time.Time
}

// shardTask is one replica range of a campaign on the board.
type shardTask struct {
	idx int
	rg  shardRange
	key string // consistent-hash placement key

	claims     map[string]*claim
	stealable  bool // no dispatch currently executing the range
	speculated bool // a speculative claim was already launched
	done       bool
	winner     *ShardResponse
	winnerJSON []byte
	started    time.Time
	finished   time.Time
	// ctx/cancel bound the task's outstanding claims; a winner cancels
	// the rest.
	ctx    context.Context
	cancel context.CancelFunc
}

// board tracks one campaign's shard tasks and arbitrates racing claims.
// Work stealing and speculative re-execution are both just additional
// claims on a task; determinism (absolute-seed sharding) is what makes
// first-result-wins exact, and a byte mismatch between two results for
// the same range is therefore a hard integrity error, never a tiebreak.
type board struct {
	mu    sync.Mutex
	c     *Coordinator
	fp    string
	spec  service.Spec
	tasks []*shardTask
	// deadline, when nonzero, is the campaign deadline propagated to
	// stolen shards.
	deadline time.Time
	// abort cancels the whole campaign on an integrity failure.
	abort context.CancelFunc
	err   error
	// onWin journals a winning shard payload (nil when not journaled);
	// called without mu held.
	onWin func(rg shardRange, payload []byte)
}

func newBoard(c *Coordinator, fp string, spec service.Spec, plan []shardRange, abort context.CancelFunc) *board {
	b := &board{c: c, fp: fp, spec: spec, abort: abort}
	now := time.Now()
	for i, rg := range plan {
		b.tasks = append(b.tasks, &shardTask{
			idx:       i,
			rg:        rg,
			key:       shardKey(fp, rg.first, rg.count),
			claims:    make(map[string]*claim),
			stealable: true,
			started:   now,
		})
	}
	return b
}

// revive marks a task complete from a journaled checkpoint, bypassing
// the claim race (and the onWin journal hook — the checkpoint is already
// durable). Called before the board accepts steals.
func (b *board) revive(t *shardTask, resp *ShardResponse, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t.done = true
	t.stealable = false
	t.winner = resp
	t.winnerJSON = payload
	t.finished = time.Now()
}

// register mints a claim token for an execution attempt on the task.
// Primary, local, and speculative claims mark the range as actively
// dispatched (not stealable); a steal claim leaves the primary racing.
func (b *board) register(t *shardTask, kind claimKind, worker string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	cl := &claim{
		token:  fmt.Sprintf("claim-%s-%d", b.fp[:8], b.c.claimSeq.Add(1)),
		kind:   kind,
		worker: worker,
		start:  time.Now(),
	}
	t.claims[cl.token] = cl
	if kind != claimSteal {
		t.stealable = false
	}
	return cl.token
}

// releaseClaim withdraws a claim whose execution attempt failed. A
// failed primary attempt re-opens the range for stealing while the
// primary backs off and fails over.
func (b *board) releaseClaim(t *shardTask, token string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(t.claims, token)
	if !t.done && !b.activeDispatchLocked(t) {
		t.stealable = true
	}
}

// activeDispatchLocked reports whether a non-steal claim is executing.
func (b *board) activeDispatchLocked(t *shardTask) bool {
	for _, cl := range t.claims {
		if cl.kind != claimSteal {
			return true
		}
	}
	return false
}

// taskDone reports whether the range already has a winner.
func (b *board) taskDone(t *shardTask) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return t.done
}

// failed returns the campaign's integrity error, if any.
func (b *board) failed() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// complete delivers a claim's result. The first result for a task wins:
// it is recorded, journaled, and the task's other claims are cancelled.
// Any later result must be byte-identical to the winner — a duplicate
// is discarded (that is what makes steals and speculation safe), and a
// mismatch fails the whole campaign as a hard integrity error, because
// determinism guarantees two honest executions of the same seed range
// can never disagree.
//
// complete is idempotent per token and safe for any caller thread (the
// primary dispatch loop, the speculation monitor, the claims HTTP
// handler). It reports whether the token was known and whether this
// result became the winner.
func (b *board) complete(t *shardTask, token string, resp *ShardResponse) (known, won bool, err error) {
	payload, merr := json.Marshal(resp)
	if merr != nil {
		return true, false, fmt.Errorf("cluster: encode shard result: %w", merr)
	}

	b.mu.Lock()
	cl, ok := t.claims[token]
	if !ok {
		b.mu.Unlock()
		return false, false, nil
	}
	delete(t.claims, token)
	if !t.done {
		t.done = true
		t.stealable = false
		t.winner = resp
		t.winnerJSON = payload
		t.finished = time.Now()
		cancel := t.cancel
		switch cl.kind {
		case claimSteal:
			b.c.stealsWon.Add(1)
		case claimSpeculative:
			b.c.speculativeWins.Add(1)
		}
		onWin := b.onWin
		b.mu.Unlock()
		if cancel != nil {
			cancel() // abort the losing claims' work
		}
		if onWin != nil {
			onWin(t.rg, payload)
		}
		return true, true, nil
	}
	// A loser: the range already has a winner. Byte-compare — identical
	// bytes are the expected duplicate of a racing claim; different
	// bytes mean a worker returned a wrong result for a deterministic
	// computation, and the campaign must not merge it away silently.
	if bytes.Equal(payload, t.winnerJSON) {
		switch cl.kind {
		case claimSteal:
			b.c.stealsLost.Add(1)
		case claimSpeculative:
			b.c.speculativeLosses.Add(1)
		}
		b.c.duplicateResults.Add(1)
		b.mu.Unlock()
		return true, false, nil
	}
	b.c.integrityFailures.Add(1)
	b.err = fmt.Errorf("cluster: integrity failure: shard [%d,+%d) of %s got two different results (claim %s from %s)",
		t.rg.first, t.rg.count, b.fp[:8], cl.kind, cl.worker)
	err = b.err
	abort := b.abort
	b.mu.Unlock()
	if abort != nil {
		abort() // a poisoned campaign must stop, not merge
	}
	return true, false, err
}

// stealTask hands out one pending shard to an idle worker: a task with
// no dispatch actively executing it (its primary is parked waiting for
// an in-flight slot or backing off between failovers). At most one
// steal claim is outstanding per task so a storm of idle workers does
// not pile onto the same range. Returns ok=false when nothing is
// stealable.
func (b *board) stealTask(workerURL string) (req *ShardRequest, token string, t *shardTask, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return nil, "", nil, false
	}
	for _, cand := range b.tasks {
		if cand.done || !cand.stealable || len(cand.claims) > 0 {
			continue
		}
		cl := &claim{
			token:  fmt.Sprintf("claim-%s-%d", b.fp[:8], b.c.claimSeq.Add(1)),
			kind:   claimSteal,
			worker: workerURL,
			start:  time.Now(),
		}
		cand.claims[cl.token] = cl
		return &ShardRequest{Spec: b.spec, First: cand.rg.first, Count: cand.rg.count}, cl.token, cand, true
	}
	return nil, "", nil, false
}

// stragglers returns the tasks eligible for speculative re-execution at
// now: the campaign has completed enough shards to know its latency
// shape, and the task has been running longer than factor × the
// completed-duration quantile (floored at minWait). Each returned task
// is marked speculated so it is only ever re-dispatched once.
func (b *board) stragglers(now time.Time, cfg speculationConfig) []*shardTask {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return nil
	}
	durations := make([]time.Duration, 0, len(b.tasks))
	pending := 0
	for _, t := range b.tasks {
		if t.done {
			durations = append(durations, t.finished.Sub(t.started))
		} else {
			pending++
		}
	}
	if len(durations) == 0 || pending == 0 {
		return nil // no latency shape yet, or nothing left to chase
	}
	threshold := durationQuantile(durations, cfg.Quantile)
	threshold = time.Duration(float64(threshold) * cfg.Factor)
	if threshold < cfg.MinWait {
		threshold = cfg.MinWait
	}
	var out []*shardTask
	for _, t := range b.tasks {
		if t.done || t.speculated {
			continue
		}
		if now.Sub(t.started) >= threshold {
			t.speculated = true
			out = append(out, t)
		}
	}
	return out
}

// durationQuantile returns the q-quantile (0..1) of the samples by
// nearest-rank on an insertion-sorted copy; samples are tiny (≤ shard
// count) so O(n²) is irrelevant.
func durationQuantile(samples []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
