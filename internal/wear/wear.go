// Package wear models PCM write endurance: each cell survives a lognormal
// number of writes before becoming stuck, and stuck cells turn into
// permanent (hard) errors that consume ECC budget. This is the other half
// of the scrub trade-off the paper exploits — every scrub write-back costs
// endurance, so policies that write less defer hard errors.
package wear

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Params configures the endurance distribution.
type Params struct {
	// MeanLog10Writes is the median cell endurance in log10 writes
	// (8 → 10^8 writes, the usual PCM figure).
	MeanLog10Writes float64
	// SigmaLog10 is the cell-to-cell endurance spread in decades.
	SigmaLog10 float64
	// CellsPerLine is the number of cells whose endurance a line aggregates.
	CellsPerLine int
	// K is how many of the weakest cells are tracked per line; error counts
	// at or above K saturate.
	K int
}

// DefaultParams returns the baseline endurance model: median 10^8 writes
// with 0.25 decades of spread over 256-cell lines, tracking the 12 weakest
// cells.
func DefaultParams() Params {
	return Params{
		MeanLog10Writes: 8,
		SigmaLog10:      0.25,
		CellsPerLine:    256,
		K:               12,
	}
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if p.MeanLog10Writes <= 0 {
		return fmt.Errorf("wear: MeanLog10Writes must be positive")
	}
	if p.SigmaLog10 < 0 {
		return fmt.Errorf("wear: SigmaLog10 must be non-negative")
	}
	if p.CellsPerLine < 1 {
		return fmt.Errorf("wear: CellsPerLine must be >= 1")
	}
	if p.K < 1 || p.K > p.CellsPerLine {
		return fmt.Errorf("wear: K must be in [1, CellsPerLine]")
	}
	return nil
}

// Model samples and evaluates per-line endurance state.
type Model struct {
	p Params
}

// NewModel validates params and builds a model.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustModel is NewModel that panics on error.
func MustModel(p Params) *Model {
	m, err := NewModel(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns a copy of the model's parameters.
func (m *Model) Params() Params { return m.p }

// SampleWeakest draws the K smallest endurances (in writes, ascending)
// among the line's cells, using the Rényi order-statistics construction so
// cost is O(K) rather than O(cells). The out slice is reused if it has
// capacity.
//
// The K uniforms are drawn in one batched Fill and transformed in place:
// each draw u_j is finite and < 1 (Float64 < 1 keeps every exponential
// spacing finite, so -expm1(-sum) < 1 always), hence all K order
// statistics exist and the result always has exactly K entries.
func (m *Model) SampleWeakest(r *stats.RNG, out []float64) []float64 {
	k := m.p.K
	if cap(out) < k {
		out = make([]float64, k)
	}
	out = out[:k]
	r.Fill(out)
	n := m.p.CellsPerLine
	sum := 0.0
	for j := 0; j < k; j++ {
		// Exponential(1) spacing from the batched uniform.
		sum += -math.Log(1-out[j]) / float64(n-j)
		u := -math.Expm1(-sum)
		// Lognormal quantile: 10^(mean + sigma·Φ⁻¹(u)).
		q := m.p.MeanLog10Writes + m.p.SigmaLog10*stats.StdNormalQuantile(u)
		out[j] = math.Pow(10, q)
	}
	return out
}

// DeadCells returns how many of the tracked weakest cells have exceeded
// their endurance after the given number of line writes. A return equal to
// K means "at least K" (saturated).
func DeadCells(weakest []float64, writes uint64) int {
	w := float64(writes)
	// weakest is ascending; linear scan is fine for K ~ 12.
	for i, e := range weakest {
		if w < e {
			return i
		}
	}
	return len(weakest)
}

// StuckWrongProb is the probability that a stuck cell disagrees with the
// data most recently written over it, for uniform 4-level data.
const StuckWrongProb = 0.75

// TwoBitProb is the probability that a wrong stuck cell corrupts two data
// bits rather than one: of the 12 ordered unequal level pairs under the
// 2-bit Gray code, 4 differ in both bits.
const TwoBitProb = 1.0 / 3.0

// StuckErrors samples the persistent error contribution of dead cells
// right after a line rewrite: how many stuck cells actively disagree with
// the stored data, and how many bit errors they contribute.
func StuckErrors(r *stats.RNG, deadCells int) (wrongCells, bitErrors int) {
	for i := 0; i < deadCells; i++ {
		if !r.Bernoulli(StuckWrongProb) {
			continue
		}
		wrongCells++
		if r.Bernoulli(TwoBitProb) {
			bitErrors += 2
		} else {
			bitErrors++
		}
	}
	return wrongCells, bitErrors
}

// ExpectedFirstDeathWrites returns the expected number of writes at which
// the line's weakest cell dies: the mean of the first order statistic of
// CellsPerLine lognormals, estimated analytically via the quantile of the
// expected first uniform order statistic (median-of-minimum approximation)
// — accurate to a few percent for the narrow sigmas used here.
func (m *Model) ExpectedFirstDeathWrites() float64 {
	// E[U_(1)] = 1/(n+1) for n uniforms.
	u := 1.0 / float64(m.p.CellsPerLine+1)
	q := m.p.MeanLog10Writes + m.p.SigmaLog10*stats.StdNormalQuantile(u)
	return math.Pow(10, q)
}

// LifetimeWrites returns the number of line writes at which the expected
// number of dead cells first exceeds the ECC correction budget t — the
// point where hard errors alone defeat the code. Solved in closed form:
// dead(w) ≈ n·Φ((log10 w − μ)/σ) = t  ⇒  w = 10^(μ + σ·Φ⁻¹(t/n)).
func (m *Model) LifetimeWrites(budget int) float64 {
	if budget < 1 {
		budget = 1
	}
	frac := float64(budget) / float64(m.p.CellsPerLine)
	if frac >= 1 {
		return math.Inf(1)
	}
	q := m.p.MeanLog10Writes + m.p.SigmaLog10*stats.StdNormalQuantile(frac)
	return math.Pow(10, q)
}
