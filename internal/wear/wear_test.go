package wear

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.MeanLog10Writes = 0 },
		func(p *Params) { p.SigmaLog10 = -1 },
		func(p *Params) { p.CellsPerLine = 0 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = p.CellsPerLine + 1 },
	}
	for i, mut := range cases {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSampleWeakestSortedPositive(t *testing.T) {
	m := MustModel(DefaultParams())
	r := stats.NewRNG(1)
	var buf []float64
	for trial := 0; trial < 200; trial++ {
		buf = m.SampleWeakest(r, buf)
		if len(buf) != m.Params().K {
			t.Fatalf("got %d weakest, want %d", len(buf), m.Params().K)
		}
		if !sort.Float64sAreSorted(buf) {
			t.Fatalf("weakest not ascending: %v", buf)
		}
		for _, e := range buf {
			if e <= 0 || math.IsNaN(e) {
				t.Fatalf("bad endurance %g", e)
			}
		}
	}
}

func TestSampleWeakestMatchesBruteForceMinimum(t *testing.T) {
	// The first order statistic from the fast sampler must match the
	// distribution of min over CellsPerLine lognormal draws.
	p := DefaultParams()
	p.CellsPerLine = 64
	p.K = 1
	m := MustModel(p)
	const trials = 5000
	r1 := stats.NewRNG(3)
	var fast stats.Summary
	for i := 0; i < trials; i++ {
		w := m.SampleWeakest(r1, nil)
		fast.Add(math.Log10(w[0]))
	}
	r2 := stats.NewRNG(4)
	var brute stats.Summary
	ln10 := math.Ln10
	for i := 0; i < trials; i++ {
		minE := math.Inf(1)
		for c := 0; c < p.CellsPerLine; c++ {
			e := r2.LogNormal(p.MeanLog10Writes*ln10, p.SigmaLog10*ln10)
			if e < minE {
				minE = e
			}
		}
		brute.Add(math.Log10(minE))
	}
	if math.Abs(fast.Mean()-brute.Mean()) > 0.02 {
		t.Errorf("min endurance mean: fast %.4f vs brute %.4f (log10)", fast.Mean(), brute.Mean())
	}
	if math.Abs(fast.StdDev()-brute.StdDev()) > 0.02 {
		t.Errorf("min endurance sd: fast %.4f vs brute %.4f (log10)", fast.StdDev(), brute.StdDev())
	}
}

func TestDeadCells(t *testing.T) {
	weakest := []float64{100, 200, 300}
	cases := []struct {
		writes uint64
		want   int
	}{
		{0, 0}, {99, 0}, {100, 1}, {250, 2}, {300, 3}, {1e6, 3},
	}
	for _, c := range cases {
		if got := DeadCells(weakest, c.writes); got != c.want {
			t.Errorf("DeadCells(%d) = %d, want %d", c.writes, got, c.want)
		}
	}
	if DeadCells(nil, 100) != 0 {
		t.Error("empty weakest should report 0 dead")
	}
}

func TestStuckErrorsStatistics(t *testing.T) {
	r := stats.NewRNG(5)
	const dead = 4
	const trials = 50000
	var wrongSum, bitsSum float64
	for i := 0; i < trials; i++ {
		wrong, bits := StuckErrors(r, dead)
		if wrong < 0 || wrong > dead {
			t.Fatalf("wrong cells %d out of range", wrong)
		}
		if bits < wrong || bits > 2*wrong {
			t.Fatalf("bit errors %d inconsistent with %d wrong cells", bits, wrong)
		}
		wrongSum += float64(wrong)
		bitsSum += float64(bits)
	}
	wantWrong := dead * StuckWrongProb
	if math.Abs(wrongSum/trials-wantWrong) > 0.05 {
		t.Errorf("mean wrong cells %.3f, want ~%.3f", wrongSum/trials, wantWrong)
	}
	wantBits := wantWrong * (1 + TwoBitProb)
	if math.Abs(bitsSum/trials-wantBits) > 0.07 {
		t.Errorf("mean stuck bit errors %.3f, want ~%.3f", bitsSum/trials, wantBits)
	}
}

func TestStuckErrorsZeroDead(t *testing.T) {
	r := stats.NewRNG(6)
	if w, b := StuckErrors(r, 0); w != 0 || b != 0 {
		t.Error("zero dead cells should contribute nothing")
	}
}

func TestExpectedFirstDeathBelowMedian(t *testing.T) {
	m := MustModel(DefaultParams())
	first := m.ExpectedFirstDeathWrites()
	median := math.Pow(10, m.Params().MeanLog10Writes)
	if first >= median {
		t.Errorf("first death (%g) should be well below the median endurance (%g)", first, median)
	}
	if first <= 0 {
		t.Error("first death must be positive")
	}
}

func TestLifetimeWritesMonotoneInBudget(t *testing.T) {
	m := MustModel(DefaultParams())
	prev := 0.0
	for _, budget := range []int{1, 2, 4, 8, 16} {
		lt := m.LifetimeWrites(budget)
		if lt <= prev {
			t.Fatalf("lifetime should grow with ECC budget: budget=%d lt=%g prev=%g", budget, lt, prev)
		}
		prev = lt
	}
	if !math.IsInf(m.LifetimeWrites(256), 1) {
		t.Error("budget >= all cells should be infinite lifetime")
	}
	if m.LifetimeWrites(0) != m.LifetimeWrites(1) {
		t.Error("budget 0 should clamp to 1")
	}
}
