// Package repro's root benchmark suite regenerates every experiment in
// DESIGN.md's index (T1/F1–F12) at benchmark scale: each benchmark runs
// the same code path as cmd/experiments, scaled down so a -bench sweep
// finishes in minutes, and reports the experiment's key figures through
// b.ReportMetric so the shape of the paper's results is visible straight
// from `go test -bench`.
//
// Scale note: benchmarks use a 2048-line region and sub-day horizons;
// cmd/experiments runs the full-scale versions.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wear"
)

// benchSystem returns the benchmark-scale system.
func benchSystem() core.System {
	sys := core.DefaultSystem()
	sys.Geometry = mem.Geometry{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 4,
		RowsPerBank: 32, LinesPerRow: 16, LineBytes: 64,
	} // 2048 lines
	sys.Horizon = 43200
	sys.Substeps = 8
	return sys
}

func benchWorkload(name string, b *testing.B) trace.Workload {
	w, err := trace.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func runMech(b *testing.B, sys core.System, mechName, workload string) *simResult {
	m, err := core.SuiteMechanism(sys, mechName)
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.RunOne(sys, m, benchWorkload(workload, b))
	if err != nil {
		b.Fatal(err)
	}
	return &simResult{r.UEs, r.ScrubWrites(), r.ScrubEnergy.Total(), r.FinalInterval}
}

type simResult struct {
	ues     int64
	writes  int64
	energy  float64
	finalIv float64
}

// BenchmarkF1Drift regenerates the drift error-probability curve: one
// iteration evaluates the analytic model across the full time × level
// grid and cross-checks one Monte Carlo point.
func BenchmarkF1Drift(b *testing.B) {
	model := pcm.MustModel(pcm.DefaultParams())
	r := stats.NewRNG(1)
	var last float64
	for i := 0; i < b.N; i++ {
		for _, secs := range []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
			for level := 0; level < pcm.Levels; level++ {
				last = model.ErrProb(level, secs)
			}
		}
		// One MC point to keep the cross-check exercised.
		c := model.WriteCell(r, 2)
		_ = model.CrossingTime(c)
	}
	b.ReportMetric(last, "P(err|level3,1e8s)")
	b.ReportMetric(model.ErrProb(2, 1e6), "P(err|level2,1e6s)")
}

// BenchmarkF2ECCInterval regenerates the UE-probability-vs-interval curve
// for the four ECC schemes.
func BenchmarkF2ECCInterval(b *testing.B) {
	model := pcm.MustModel(pcm.DefaultParams())
	schemes := []ecc.Scheme{
		ecc.NewSECDEDLine(), ecc.MustBCHLine(2), ecc.MustBCHLine(4), ecc.MustBCHLine(8),
	}
	r := stats.NewRNG(2)
	for i := 0; i < b.N; i++ {
		for _, secs := range []float64{1e3, 1e4, 1e5} {
			for _, s := range schemes {
				pUE := 0.0
				for k := 1; k <= 12; k++ {
					tail := model.LineErrorTailGE(pcm.UniformMix(), pcm.CellsPerLine, k, secs)
					pUE += tail * ecc.UncorrectableProb(s, r, k, 10)
				}
				_ = pUE
			}
		}
	}
	iv8 := model.ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, 6, 1e-4)
	iv1 := model.ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, 1, 1e-4)
	b.ReportMetric(iv8/iv1, "interval-gain-BCH8-vs-SECDED")
}

// BenchmarkF3ScrubWrites regenerates the scrub-write comparison: basic vs
// combined on a cold workload, reporting the reduction factor.
func BenchmarkF3ScrubWrites(b *testing.B) {
	sys := benchSystem()
	var factor float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		basic := runMech(b, sys, "basic", "idle-archive")
		comb := runMech(b, sys, "combined", "idle-archive")
		if comb.writes > 0 {
			factor = float64(basic.writes) / float64(comb.writes)
		}
	}
	b.ReportMetric(factor, "write-reduction-x")
}

// BenchmarkF4UncorrectableErrors regenerates the UE comparison.
func BenchmarkF4UncorrectableErrors(b *testing.B) {
	sys := benchSystem()
	var basicUEs, combUEs float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		basic := runMech(b, sys, "basic", "idle-archive")
		comb := runMech(b, sys, "combined", "idle-archive")
		basicUEs = float64(basic.ues)
		combUEs = float64(comb.ues)
	}
	b.ReportMetric(basicUEs, "basic-UEs")
	b.ReportMetric(combUEs, "combined-UEs")
	if basicUEs > 0 {
		b.ReportMetric(100*(1-combUEs/basicUEs), "UE-reduction-%")
	}
}

// BenchmarkF5ScrubEnergy regenerates the scrub-energy comparison.
func BenchmarkF5ScrubEnergy(b *testing.B) {
	sys := benchSystem()
	var reduction float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		basic := runMech(b, sys, "basic", "idle-archive")
		comb := runMech(b, sys, "combined", "idle-archive")
		if basic.energy > 0 {
			reduction = 100 * (1 - comb.energy/basic.energy)
		}
	}
	b.ReportMetric(reduction, "energy-reduction-%")
}

// BenchmarkF6LightDetect regenerates the detection ablation: check-path
// energy with and without the light probe at identical interval/scheme.
func BenchmarkF6LightDetect(b *testing.B) {
	sys := benchSystem()
	var saving float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		m1, err := core.SuiteMechanism(sys, "strong-ecc")
		if err != nil {
			b.Fatal(err)
		}
		m2, err := core.SuiteMechanism(sys, "light-detect")
		if err != nil {
			b.Fatal(err)
		}
		w := benchWorkload("web-serve", b)
		rFull, err := core.RunOne(sys, m1, w)
		if err != nil {
			b.Fatal(err)
		}
		rLight, err := core.RunOne(sys, m2, w)
		if err != nil {
			b.Fatal(err)
		}
		fc := rFull.ScrubEnergy.ReadPJ + rFull.ScrubEnergy.DecodePJ + rFull.ScrubEnergy.DetectPJ
		lc := rLight.ScrubEnergy.ReadPJ + rLight.ScrubEnergy.DecodePJ + rLight.ScrubEnergy.DetectPJ
		if fc > 0 {
			saving = 100 * (1 - lc/fc)
		}
	}
	b.ReportMetric(saving, "check-energy-saving-%")
}

// BenchmarkF7ThresholdSweep regenerates the soft-vs-hard trade-off sweep.
func BenchmarkF7ThresholdSweep(b *testing.B) {
	sys := benchSystem()
	sys.InitialLineWrites = 20_000_000
	bch8 := ecc.MustBCHLine(8)
	interval, err := core.FixedIntervalFor(sys, bch8.T()-2)
	if err != nil {
		b.Fatal(err)
	}
	var writesAt1, writesAt6 float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		for _, thr := range []int{1, 6} {
			mech := core.Mechanism{
				Name:   "thr",
				Scheme: bch8,
				Policy: scrub.MustNew(scrub.Config{
					Label: "thr", Detect: scrub.LightDetect, WriteThreshold: thr,
				}),
				Interval: interval,
			}
			r, err := core.RunOne(sys, mech, benchWorkload("idle-archive", b))
			if err != nil {
				b.Fatal(err)
			}
			if thr == 1 {
				writesAt1 = float64(r.ScrubWrites())
			} else {
				writesAt6 = float64(r.ScrubWrites())
			}
		}
	}
	b.ReportMetric(writesAt1, "scrub-writes-thr1")
	b.ReportMetric(writesAt6, "scrub-writes-thr6")
}

// BenchmarkF8Workloads regenerates the per-workload detail for the
// combined mechanism across the whole suite.
func BenchmarkF8Workloads(b *testing.B) {
	sys := benchSystem()
	var totalUEs int64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		totalUEs = 0
		for _, name := range trace.Names() {
			r := runMech(b, sys, "combined", name)
			totalUEs += r.ues
		}
	}
	b.ReportMetric(float64(totalUEs), "combined-total-UEs")
}

// BenchmarkF9Bandwidth regenerates the scrub bandwidth/slowdown table
// (pure analytic model).
func BenchmarkF9Bandwidth(b *testing.B) {
	timing := memctrl.DefaultParams()
	timing.Banks = 256
	m := memctrl.MustModel(timing)
	const fleetLines = 32 << 30 / 64
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, interval := range []float64{60, 300, 900, 3600, 14400, 86400} {
			sr := memctrl.ScrubReadRate(fleetLines, interval)
			rates := memctrl.Rates{
				DemandReads: 2e6, DemandWrites: 2e5,
				ScrubReads: sr, ScrubWrites: sr * 0.03,
			}
			s := m.Slowdown(rates)
			if s > worst {
				worst = s
			}
		}
	}
	b.ReportMetric(worst, "worst-slowdown-x")
}

// BenchmarkF10Sensitivity regenerates the drift-spread sensitivity at the
// 2x pessimistic point.
func BenchmarkF10Sensitivity(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		sys := benchSystem()
		sys.Seed = uint64(i + 1)
		for j := range sys.PCM.NuSigma {
			sys.PCM.NuSigma[j] *= 2
		}
		basic := runMech(b, sys, "basic", "idle-archive")
		comb := runMech(b, sys, "combined", "idle-archive")
		if comb.writes > 0 {
			factor = float64(basic.writes) / float64(comb.writes)
		}
	}
	b.ReportMetric(factor, "write-reduction-x-at-2x-sigma")
}

// BenchmarkF11Lifetime regenerates the endurance lifetime analytics.
func BenchmarkF11Lifetime(b *testing.B) {
	wm := wear.MustModel(wear.DefaultParams())
	var years float64
	for i := 0; i < b.N; i++ {
		// 2000 writes/line/day is the stream-write regime.
		years = wm.LifetimeWrites(4) / 2000 / 365
	}
	b.ReportMetric(years, "lifetime-years-at-2000-writes-day")
}

// BenchmarkF12Adaptive regenerates the fixed-vs-adaptive comparison under
// a phased workload.
func BenchmarkF12Adaptive(b *testing.B) {
	sys := benchSystem()
	phased := trace.Workload{
		Name:                "phased-burst",
		WritesPerLinePerSec: 0.002,
		ReadsPerLinePerSec:  0.02,
		FootprintFrac:       1.0,
		ZipfSkew:            0.3,
		Phases: []trace.Phase{
			{DurationSec: sys.Horizon / 4, WriteMult: 4, ReadMult: 1},
			{DurationSec: sys.Horizon / 4, WriteMult: 0.01, ReadMult: 1},
		},
	}
	var fixedE, adaptE float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		mF, err := core.SuiteMechanism(sys, "threshold")
		if err != nil {
			b.Fatal(err)
		}
		mA, err := core.SuiteMechanism(sys, "combined")
		if err != nil {
			b.Fatal(err)
		}
		rF, err := core.RunOne(sys, mF, phased)
		if err != nil {
			b.Fatal(err)
		}
		rA, err := core.RunOne(sys, mA, phased)
		if err != nil {
			b.Fatal(err)
		}
		fixedE = rF.ScrubEnergy.Total()
		adaptE = rA.ScrubEnergy.Total()
	}
	b.ReportMetric(fixedE/1e6, "fixed-scrub-uJ")
	b.ReportMetric(adaptE/1e6, "adaptive-scrub-uJ")
}
