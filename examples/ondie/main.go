// Ondie: demonstrates the hidden-error regime an on-die ECC layer
// creates, and how HARP-style active profiling claws the lost visibility
// back. Three runs of the same aged device:
//
//  1. no on-die ECC — the controller sees every raw error;
//  2. on-die SECDED under a uniform patrol — sub-strength errors vanish
//     from telemetry until a line overflows, then surface all at once,
//     miscorrection-inflated;
//  3. the same chip under an active-profiling policy — periodic profiling
//     rounds build an at-risk set and patrol visits are biased toward it
//     at exactly equal scrub bandwidth.
//
//	go run ./examples/ondie
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/ondie"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// A small device, pre-aged to the minority-at-risk point: the weakest
	// cells of some lines are dead, so raw errors concentrate unevenly —
	// the population profiling exists to find.
	sys := core.DefaultSystem()
	sys.Geometry.RowsPerBank = 16 // 4096 lines
	sys.Horizon = 43200           // half a day
	sys.InitialLineWrites = 15_000_000

	w, err := trace.ByName("idle-archive")
	if err != nil {
		log.Fatal(err)
	}
	mech, err := core.SuiteMechanism(sys, "strong-ecc")
	if err != nil {
		log.Fatal(err)
	}
	// BCH-4 keeps the controller honest: stuck-bit lines sit only a couple
	// of drift errors from uncorrectable, so where patrol bandwidth goes
	// actually matters.
	mech.Scheme, err = ecc.NewBCHLine(4)
	if err != nil {
		log.Fatal(err)
	}
	mech.Policy, err = scrub.ByName("threshold-1")
	if err != nil {
		log.Fatal(err)
	}
	mech.Interval = sys.Horizon / 32

	// Run 1: bare chip, every raw error is controller-visible.
	bare, err := core.RunOne(sys, mech, w)
	if err != nil {
		log.Fatal(err)
	}

	// Run 2: on-die SECDED under the same uniform patrol.
	osys := sys
	osys.OnDie = &ondie.Config{T: 1}
	hidden, err := core.RunOne(osys, mech, w)
	if err != nil {
		log.Fatal(err)
	}

	// Run 3: same chip, profiled policy — same write threshold, same
	// interval, plus profiling rounds and at-risk patrol bias.
	pm := mech
	pm.Policy = scrub.ProfiledThreshold(1)
	profiled, err := core.RunOne(osys, pm, w)
	if err != nil {
		log.Fatal(err)
	}

	vis := core.Table{
		Title:  "What the controller sees (aged device, BCH-4 controller)",
		Header: []string{"metric", "no on-die ECC", "on-die SECDED", "on-die + profiling"},
	}
	row := func(name string, f func(*sim.Result) string) {
		vis.AddRow(name, f(bare), f(hidden), f(profiled))
	}
	row("controller corrected bits", func(r *sim.Result) string { return core.FmtCount(r.CorrectedBits) })
	row("hidden corrected bits", func(r *sim.Result) string { return core.FmtCount(r.OnDieCorrectedBits) })
	row("on-die overflows", func(r *sim.Result) string { return core.FmtCount(r.OnDieOverflows) })
	row("uncorrectable errors", func(r *sim.Result) string { return core.FmtCount(r.UEs) })
	row("scrub visits", func(r *sim.Result) string { return core.FmtCount(r.ScrubVisits) })
	if err := vis.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	prof := core.Table{
		Title:  "What profiling bought (equal scrub bandwidth)",
		Header: []string{"metric", "value"},
	}
	prof.AddRow("profiling rounds", core.FmtCount(profiled.ProfileRounds))
	prof.AddRow("profiling reads", core.FmtCount(profiled.ProfileReads))
	prof.AddRow("direct error bits", core.FmtCount(profiled.ProfileDirectBits))
	prof.AddRow("indirect error bits", core.FmtCount(profiled.ProfileIndirectBits))
	prof.AddRow("at-risk lines", core.FmtCount(int64(profiled.AtRiskLines)))
	prof.AddRow("redirected visits", core.FmtCount(profiled.AtRiskVisits))
	prof.AddRow("UEs vs uniform patrol", fmt.Sprintf("%d vs %d", profiled.UEs, hidden.UEs))
	if err := prof.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if profiled.UEs < hidden.UEs {
		fmt.Printf("\nprofiled patrol removed %.0f%% of UEs at identical scrub bandwidth (%d visits)\n",
			100*(1-float64(profiled.UEs)/float64(hidden.UEs)), profiled.ScrubVisits)
	}
}
