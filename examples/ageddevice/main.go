// Ageddevice: operating worn-out PCM. A device late in life has stuck
// cells on most lines; this example shows how the hard-error companion
// mechanisms — error-correcting pointers and Start-Gap wear leveling —
// compose with the paper's combined scrub mechanism to keep an aged
// array serviceable.
//
//	go run ./examples/ageddevice
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	sys := core.DefaultSystem()
	sys.Horizon = 86400         // one day
	sys.InitialLineWrites = 3e7 // ~4-5 stuck cells per line

	workload, err := trace.ByName("kv-store")
	if err != nil {
		log.Fatal(err)
	}
	mech, err := core.SuiteMechanism(sys, "combined")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("device aged to 3e7 writes per line (median endurance 1e8);")
	fmt.Println("combined scrub mechanism, kv-store workload, one day")
	fmt.Println()

	configs := []struct {
		label string
		opts  core.Options
	}{
		{"bare", core.Options{}},
		{"+ECP-6", core.Options{ECPEntries: 6}},
		{"+leveling", core.Options{GapMovePeriod: 100}},
		{"+ECP-6 +leveling", core.Options{ECPEntries: 6, GapMovePeriod: 100}},
	}

	t := core.Table{
		Title:  "Hard-error mechanisms under the combined scrub",
		Header: []string{"configuration", "UEs", "scrub writes", "stuck covered", "max slot writes", "energy"},
	}
	for _, c := range configs {
		res, err := core.RunOneWithOptions(sys, mech, workload, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(c.label,
			core.FmtCount(res.UEs),
			core.FmtCount(res.ScrubWrites()),
			core.FmtCount(res.ECPCoveredCells),
			core.FmtCount(int64(res.MaxLineWrites)),
			core.FmtEnergy(res.ScrubEnergy.Total()))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("ECP removes the stuck cells from the ECC's view (UEs and panic")
	fmt.Println("write-backs collapse); leveling flattens where future wear lands.")
}
