// Eccdesign: walks the ECC design space with the *real codecs* — encoding
// actual 64-byte lines, injecting drift-placed bit errors, and decoding —
// to show storage overhead, correction behaviour, and the safe scrub
// interval each scheme buys. This example exercises the BCH and SECDED
// implementations directly rather than through the reliability simulator.
//
//	go run ./examples/eccdesign
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/pcm"
	"repro/internal/stats"
)

func main() {
	sys := core.DefaultSystem()
	model, err := pcm.NewModel(sys.PCM)
	if err != nil {
		log.Fatal(err)
	}
	r := stats.NewRNG(7)

	schemes := []ecc.LineCodec{
		ecc.NewSECDEDLine(),
		ecc.MustBCHLine(2),
		ecc.MustBCHLine(4),
		ecc.MustBCHLine(8),
		ecc.MustRSLine(4),
	}

	geom := core.Table{Title: "Scheme geometry (64-byte line)",
		Header: []string{"scheme", "check bits", "overhead", "corrects"}}
	for _, s := range schemes {
		geom.AddRow(s.Name(),
			fmt.Sprintf("%d", s.CheckBits()),
			fmt.Sprintf("%.1f%%", 100*float64(s.CheckBits())/float64(s.DataBits())),
			describeT(s))
	}
	if err := geom.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Inject real errors through the real codecs: for each error count,
	// encode a random line, flip bits, decode, verify payload integrity.
	const trials = 300
	inj := core.Table{Title: fmt.Sprintf("Decode outcomes over %d random lines per cell", trials),
		Header: []string{"errors", "SECDED", "BCH-2", "BCH-4", "BCH-8", "RS-4"}}
	for _, nerr := range []int{1, 2, 3, 5, 9} {
		row := []string{fmt.Sprintf("%d", nerr)}
		for _, s := range schemes {
			row = append(row, fmt.Sprintf("%.0f%% ok", 100*successRate(r, s, nerr, trials)))
		}
		inj.AddRow(row...)
	}
	if err := inj.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// What each scheme buys: the safe patrol interval at the risk target.
	iv := core.Table{Title: fmt.Sprintf("Safe scrub interval at %g per line-sweep", sys.RiskTarget),
		Header: []string{"scheme", "interval", "vs SECDED"}}
	var base float64
	for _, s := range schemes {
		tol := 1
		if s.Name() != "SECDED" {
			tol = s.T() - 2
			if tol < 1 {
				tol = 1
			}
		}
		interval := model.ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, tol, sys.RiskTarget)
		if base == 0 {
			base = interval
		}
		rel := "1.0x"
		if !math.IsInf(interval, 1) && base > 0 {
			rel = fmt.Sprintf("%.0fx", interval/base)
		}
		iv.AddRow(s.Name(), core.FmtSeconds(interval), rel)
	}
	if err := iv.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func describeT(s ecc.LineCodec) string {
	switch s.(type) {
	case *ecc.SECDEDLine:
		return "1 bit per 72-bit word"
	case *ecc.RSLine:
		return fmt.Sprintf("%d byte symbols anywhere", s.T())
	default:
		return fmt.Sprintf("%d bits anywhere", s.T())
	}
}

// successRate encodes, corrupts, and decodes lines, returning the fraction
// of trials whose payload survived intact.
func successRate(r *stats.RNG, s ecc.LineCodec, nerr, trials int) float64 {
	ok := 0
	for i := 0; i < trials; i++ {
		data := make([]byte, ecc.LineBytes)
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		cw, err := s.EncodeLine(data)
		if err != nil {
			log.Fatal(err)
		}
		// Flip only within the codeword's valid bits — the buffer may
		// carry padding bits in its final byte that no array cell backs.
		validBits := s.DataBits() + s.CheckBits()
		flipped := map[int]bool{}
		for len(flipped) < nerr {
			pos := r.Intn(validBits)
			if flipped[pos] {
				continue
			}
			flipped[pos] = true
			cw[pos/8] ^= 1 << uint(pos%8)
		}
		if _, err := s.DecodeLine(cw); err != nil {
			continue
		}
		back := extract(s, cw)
		match := true
		for j := range data {
			if back[j] != data[j] {
				match = false
				break
			}
		}
		if match {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// extract pulls the payload from either concrete codec.
func extract(s ecc.LineCodec, cw []byte) []byte {
	switch c := s.(type) {
	case *ecc.SECDEDLine:
		return c.ExtractLine(cw)
	case *ecc.BCHLine:
		return c.ExtractLine(cw)
	case *ecc.RSLine:
		return c.ExtractLine(cw)
	default:
		panic("unknown codec")
	}
}
