// Quickstart: the smallest end-to-end use of the library — build the
// default system, take the DRAM-style baseline scrub and the paper's
// combined mechanism, run both on one workload, and print the comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// 1. A system: geometry, PCM drift physics, wear, energy costs.
	sys := core.DefaultSystem()
	sys.Horizon = 43200 // half a day is plenty for a demo

	// 2. A workload: how often lines are rewritten and read.
	workload, err := trace.ByName("db-oltp")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Two mechanisms from the paper's ladder.
	basic, err := core.SuiteMechanism(sys, "basic")
	if err != nil {
		log.Fatal(err)
	}
	combined, err := core.SuiteMechanism(sys, "combined")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run them.
	rBasic, err := core.RunOne(sys, basic, workload)
	if err != nil {
		log.Fatal(err)
	}
	rCombined, err := core.RunOne(sys, combined, workload)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare.
	t := core.Table{
		Title:  fmt.Sprintf("basic vs combined on %s (%s)", workload.Name, core.FmtSeconds(sys.Horizon)),
		Header: []string{"metric", "basic (SECDED)", "combined (BCH-8)"},
	}
	t.AddRow("uncorrectable errors",
		core.FmtCount(rBasic.UEs), core.FmtCount(rCombined.UEs))
	t.AddRow("scrub writes",
		core.FmtCount(rBasic.ScrubWrites()), core.FmtCount(rCombined.ScrubWrites()))
	t.AddRow("scrub energy",
		core.FmtEnergy(rBasic.ScrubEnergy.Total()), core.FmtEnergy(rCombined.ScrubEnergy.Total()))
	t.AddRow("sweeps",
		core.FmtCount(int64(rBasic.Sweeps)), core.FmtCount(int64(rCombined.Sweeps)))
	t.AddRow("final interval",
		core.FmtSeconds(rBasic.FinalInterval), core.FmtSeconds(rCombined.FinalInterval))
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if rCombined.ScrubWrites() > 0 {
		fmt.Printf("\ncombined mechanism: %.1fx fewer scrub writes, %.1f%% less scrub energy\n",
			float64(rBasic.ScrubWrites())/float64(rCombined.ScrubWrites()),
			100*(1-rCombined.ScrubEnergy.Total()/rBasic.ScrubEnergy.Total()))
	}
}
