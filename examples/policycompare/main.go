// Policycompare: a policy shoot-out on one workload. Walks the write-back
// threshold and detection axes at a fixed ECC strength and interval,
// showing the soft-error / hard-error / energy triangle the paper's
// adaptive algorithms navigate.
//
//	go run ./examples/policycompare [-workload name] [-horizon seconds]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/scrub"
	"repro/internal/trace"
)

func main() {
	workloadName := flag.String("workload", "web-serve", "built-in workload")
	horizon := flag.Float64("horizon", 86400, "simulated seconds")
	flag.Parse()

	sys := core.DefaultSystem()
	sys.Horizon = *horizon
	w, err := trace.ByName(*workloadName)
	if err != nil {
		log.Fatal(err)
	}

	scheme := ecc.MustBCHLine(8)
	interval, err := core.FixedIntervalFor(sys, scheme.T()-2)
	if err != nil {
		log.Fatal(err)
	}

	policies := []scrub.Policy{
		scrub.AlwaysWrite(),
		scrub.Basic(),
		scrub.LightBasic(),
		scrub.Threshold(2),
		scrub.Threshold(4),
		scrub.Threshold(6),
		scrub.Combined(6),
	}

	t := core.Table{
		Title: fmt.Sprintf("policies on %s (BCH-8, base interval %s, horizon %s)",
			w.Name, core.FmtSeconds(interval), core.FmtSeconds(*horizon)),
		Header: []string{"policy", "UEs", "scrub writes", "corrected bits",
			"scrub energy", "final interval"},
	}
	for _, p := range policies {
		mech := core.Mechanism{Name: p.Name(), Scheme: scheme, Policy: p, Interval: interval}
		res, err := core.RunOne(sys, mech, w)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.Name(),
			core.FmtCount(res.UEs),
			core.FmtCount(res.ScrubWrites()),
			core.FmtCount(res.CorrectedBits),
			core.FmtEnergy(res.ScrubEnergy.Total()),
			core.FmtSeconds(res.FinalInterval))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  always-write   burns writes and energy for nothing extra — the ablation floor")
	fmt.Println("  on-error       the DRAM reflex: every drifted bit triggers a full-line write")
	fmt.Println("  threshold-k    lets correctable errors ride, spending writes only near the margin")
	fmt.Println("  combined       adds wear-awareness and adaptive interval control on top")
}
