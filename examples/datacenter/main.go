// Datacenter: a fleet-reliability study. Simulates a sampled region under
// the baseline and the combined scrub mechanism for a week of server
// time, then extrapolates UE rates, scrub bandwidth, energy, and
// endurance burn to a fleet of PCM-main-memory servers — the question an
// operator would actually ask of this paper.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wear"
)

const (
	serverGiB = 256   // PCM per server
	fleetSize = 10000 // servers
	lineBytes = 64
	week      = 7 * 86400.0
)

func main() {
	sys := core.DefaultSystem()
	sys.Horizon = week
	workload, err := trace.ByName("kv-store")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet study: %d servers x %d GiB MLC PCM, workload %s, one week\n\n",
		fleetSize, serverGiB, workload.Name)

	names := []string{"basic", "combined"}
	numbers := map[string]*fleetNumbers{}
	for _, name := range names {
		mech, err := core.SuiteMechanism(sys, name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunOne(sys, mech, workload)
		if err != nil {
			log.Fatal(err)
		}
		numbers[name] = extrapolate(sys, res)
	}

	t := core.Table{
		Title:  "Fleet-level extrapolation (per week unless noted)",
		Header: []string{"metric", "basic", "combined"},
	}
	rows := []struct {
		label string
		get   func(*fleetNumbers) string
	}{
		{"UEs across fleet", func(f *fleetNumbers) string { return fmt.Sprintf("%.0f", f.fleetUEs) }},
		{"servers hit by a UE", func(f *fleetNumbers) string { return fmt.Sprintf("%.0f", f.serversHit) }},
		{"scrub traffic per server", func(f *fleetNumbers) string { return fmt.Sprintf("%.1f MB/s", f.scrubMBps) }},
		{"scrub energy per server", func(f *fleetNumbers) string { return fmt.Sprintf("%.2f J", f.scrubJoules) }},
		{"writes per line (scrub+demand)", func(f *fleetNumbers) string { return fmt.Sprintf("%.1f", f.writesPerLine) }},
		{"years to ECC-budget wearout", func(f *fleetNumbers) string { return fmt.Sprintf("%.0f", f.lifetimeYears) }},
	}
	for _, r := range rows {
		t.AddRow(r.label, r.get(numbers["basic"]), r.get(numbers["combined"]))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(UE magnitudes reflect the aggressive drift parameters of the study's")
	fmt.Println(" device model; the basic-vs-combined ratio is the result that transfers.)")
}

type fleetNumbers struct {
	fleetUEs      float64
	serversHit    float64
	scrubMBps     float64
	scrubJoules   float64
	writesPerLine float64
	lifetimeYears float64
}

// extrapolate scales a sampled-region result to fleet capacity: counts and
// energies scale with the line ratio; per-line rates are intensive.
func extrapolate(sys core.System, res *sim.Result) *fleetNumbers {
	f := &fleetNumbers{}
	serverGB := float64(serverGiB) * (1 << 30) / 1e9
	perServerUEs := res.UERatePerGBDay(lineBytes) * serverGB * 7
	f.fleetUEs = perServerUEs * fleetSize
	f.serversHit = fleetSize * (1 - math.Exp(-perServerUEs))

	regionLines := float64(sys.Geometry.TotalLines())
	serverLines := float64(serverGiB) * (1 << 30) / lineBytes
	scale := serverLines / regionLines

	m := memctrl.MustModel(sys.Timing)
	f.scrubMBps = m.BandwidthMBps((res.ScrubReadRate() + res.ScrubWriteRate()) * scale)
	f.scrubJoules = res.ScrubEnergy.Total() * scale / 1e12

	days := res.SimSeconds / 86400
	f.writesPerLine = float64(res.TotalLineWrites) / regionLines
	writesPerLineDay := f.writesPerLine / days

	wm := wear.MustModel(sys.Wear)
	budget := 4 // allow hard errors half of a BCH-8 budget
	if res.SchemeName == "SECDED" {
		budget = 1
	}
	f.lifetimeYears = wm.LifetimeWrites(budget) / writesPerLineDay / 365
	return f
}
