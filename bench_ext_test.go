package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/ecp"
	"repro/internal/pcm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Benchmarks for the extension experiments F13–F20 (see DESIGN.md). Same
// contract as the F1–F12 benchmarks in bench_test.go: each runs the
// experiment's code path at benchmark scale and reports its key figures.

// BenchmarkF13Leveling regenerates the wear-hot-spot comparison.
func BenchmarkF13Leveling(b *testing.B) {
	sys := benchSystem()
	var hotBare, hotLev float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		m, err := core.SuiteMechanism(sys, "combined")
		if err != nil {
			b.Fatal(err)
		}
		w := benchWorkload("kv-store", b)
		bare, err := core.RunOneWithOptions(sys, m, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lev, err := core.RunOneWithOptions(sys, m, w, core.Options{GapMovePeriod: 100})
		if err != nil {
			b.Fatal(err)
		}
		hotBare = float64(bare.MaxLineWrites)
		hotLev = float64(lev.MaxLineWrites)
	}
	b.ReportMetric(hotBare, "max-slot-writes-bare")
	b.ReportMetric(hotLev, "max-slot-writes-leveled")
}

// BenchmarkF14CellErrors regenerates the RS-vs-BCH survival comparison at
// the decisive point: four 2-bit cell errors.
func BenchmarkF14CellErrors(b *testing.B) {
	r := stats.NewRNG(14)
	bch := ecc.MustBCHLine(4)
	rs := ecc.MustRSLine(4)
	survive := func(codec ecc.LineCodec) float64 {
		ok, trials := 0, 50
		data := make([]byte, ecc.LineBytes)
		for trial := 0; trial < trials; trial++ {
			for j := range data {
				data[j] = byte(r.Uint64())
			}
			cw, err := codec.EncodeLine(data)
			if err != nil {
				b.Fatal(err)
			}
			validCells := (codec.DataBits() + codec.CheckBits()) / 2
			seen := map[int]bool{}
			for len(seen) < 4 {
				c := r.Intn(validCells)
				if seen[c] {
					continue
				}
				seen[c] = true
				cw[(2*c)/8] ^= 0b11 << uint((2*c)%8)
			}
			if _, err := codec.DecodeLine(cw); err == nil {
				ok++
			}
		}
		return float64(ok) / float64(trials)
	}
	var bchS, rsS float64
	for i := 0; i < b.N; i++ {
		bchS = survive(bch)
		rsS = survive(rs)
	}
	b.ReportMetric(100*bchS, "BCH4-survival-%")
	b.ReportMetric(100*rsS, "RS4-survival-%")
}

// BenchmarkF15Replication regenerates the seed-stability statistics at a
// reduced replica count.
func BenchmarkF15Replication(b *testing.B) {
	sys := benchSystem()
	var stderrPct float64
	for i := 0; i < b.N; i++ {
		m, err := core.SuiteMechanism(sys, "combined")
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.RunReplicated(sys, m, benchWorkload("idle-archive", b), 3)
		if err != nil {
			b.Fatal(err)
		}
		if mean := rep.ScrubWrites.Mean(); mean > 0 {
			stderrPct = 100 * rep.ScrubWrites.StdErr() / mean
		}
	}
	b.ReportMetric(stderrPct, "scrub-write-stderr-%")
}

// BenchmarkF16Precision regenerates the precision sweep's analytic side:
// safe interval per program-and-verify iteration count.
func BenchmarkF16Precision(b *testing.B) {
	pp := pcm.DefaultProgramParams()
	base := pcm.DefaultParams()
	var gain float64
	for i := 0; i < b.N; i++ {
		params := base
		params.SigmaProg = pp.SigmaAfter(1)
		coarse := pcm.MustModel(params).ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, 6, 1e-4)
		params.SigmaProg = pp.SigmaAfter(4)
		fine := pcm.MustModel(params).ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, 6, 1e-4)
		gain = fine / coarse
	}
	b.ReportMetric(gain, "interval-gain-4-iter")
}

// BenchmarkF17SLC regenerates the form-switch sweep at its endpoints.
func BenchmarkF17SLC(b *testing.B) {
	sys := benchSystem()
	var writesMLC, writesSLC float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		m, err := core.SuiteMechanism(sys, "threshold")
		if err != nil {
			b.Fatal(err)
		}
		w := benchWorkload("idle-archive", b)
		mlc, err := core.RunOneWithOptions(sys, m, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		slc, err := core.RunOneWithOptions(sys, m, w, core.Options{SLCFraction: 1})
		if err != nil {
			b.Fatal(err)
		}
		writesMLC = float64(mlc.ScrubWrites())
		writesSLC = float64(slc.ScrubWrites())
	}
	b.ReportMetric(writesMLC, "scrub-writes-mlc")
	b.ReportMetric(writesSLC, "scrub-writes-all-slc")
}

// BenchmarkF18DetectionRace regenerates the read-race attribution.
func BenchmarkF18DetectionRace(b *testing.B) {
	sys := benchSystem()
	var readFirstPct float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		m, err := core.SuiteMechanism(sys, "basic")
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOne(sys, m, benchWorkload("web-serve", b))
		if err != nil {
			b.Fatal(err)
		}
		if res.UEs > 0 {
			readFirstPct = 100 * float64(res.UEsReadFirst) / float64(res.UEs)
		}
	}
	b.ReportMetric(readFirstPct, "read-first-%")
}

// BenchmarkF19Density regenerates the density scaling law.
func BenchmarkF19Density(b *testing.B) {
	var mlcInterval, tlcInterval float64
	for i := 0; i < b.N; i++ {
		mlc, err := pcm.NewMultiLevel(4)
		if err != nil {
			b.Fatal(err)
		}
		tlc, err := pcm.NewMultiLevel(8)
		if err != nil {
			b.Fatal(err)
		}
		mlcInterval = mlc.SafeInterval(256, 1)
		tlcInterval = tlc.SafeInterval(171, 1)
	}
	b.ReportMetric(mlcInterval, "mlc-safe-interval-s")
	b.ReportMetric(tlcInterval, "tlc-safe-interval-s")
}

// BenchmarkF20ECP regenerates the aged-device pointer sweep at its
// endpoints.
func BenchmarkF20ECP(b *testing.B) {
	sys := benchSystem()
	sys.InitialLineWrites = 30_000_000
	var uesBare, uesECP float64
	for i := 0; i < b.N; i++ {
		sys.Seed = uint64(i + 1)
		m, err := core.SuiteMechanism(sys, "threshold")
		if err != nil {
			b.Fatal(err)
		}
		w := benchWorkload("idle-archive", b)
		bare, err := core.RunOneWithOptions(sys, m, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		withECP, err := core.RunOneWithOptions(sys, m, w, core.Options{ECPEntries: 6})
		if err != nil {
			b.Fatal(err)
		}
		uesBare = float64(bare.UEs)
		uesECP = float64(withECP.UEs)
	}
	b.ReportMetric(uesBare, "UEs-no-ECP")
	b.ReportMetric(uesECP, "UEs-ECP6")
	// Storage context for the metric pair.
	p := ecp.Params{Entries: 6, CellsPerLine: pcm.CellsPerLine, BitsPerCell: pcm.BitsPerCell}
	b.ReportMetric(float64(p.OverheadBits()), "ECP6-bits-per-line")
}

// BenchmarkTraceReplay measures the record/replay path end to end.
func BenchmarkTraceReplay(b *testing.B) {
	gen, err := trace.NewGenerator(benchWorkload("kv-store", b), 2048, stats.NewRNG(20))
	if err != nil {
		b.Fatal(err)
	}
	events, err := trace.Record(gen, stats.NewRNG(21), 20000, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp, err := trace.NewReplayer(events, 2048)
		if err != nil {
			b.Fatal(err)
		}
		var buf []int
		total := 0
		for t := 0.0; t < 20000; t += 500 {
			buf = rp.WritesInEpoch(nil, t, 500, buf)
			total += len(buf)
		}
		if total == 0 {
			b.Fatal("replay empty")
		}
	}
}
