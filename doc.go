// Package repro is a from-scratch Go reproduction of Awasthi, Shevgoor,
// Sudan, Rajendran, Balasubramonian & Srinivasan, "Efficient Scrub
// Mechanisms for Error-Prone Emerging Memories" (HPCA 2012).
//
// The library lives under internal/ (see README.md for the architecture
// map); the public entry point is internal/core, the runnable tools are
// under cmd/, and the worked examples under examples/. This root package
// carries the benchmark suite that regenerates every experiment in
// DESIGN.md's index at benchmark scale: run
//
//	go test -bench=. -benchmem
//
// and read the reported metrics against EXPERIMENTS.md.
package repro
