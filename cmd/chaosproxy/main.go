// Command chaosproxy fronts an upstream TCP endpoint with the seeded
// fault-injecting proxy from internal/cluster/chaosproxy, for smoke
// tests that need real processes misbehaving on the wire:
//
//	chaosproxy -upstream 127.0.0.1:8080 -seed 7 -pass 6 -drop 1 -delay 1
//
// It listens on a fresh loopback port, prints
// "chaosproxy: listening on http://127.0.0.1:PORT" so scripts can
// discover the address, and proxies until SIGINT/SIGTERM. The upstream
// is dialed per connection, so it may start after the proxy does.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster/chaosproxy"
)

func main() {
	var (
		upstream  = flag.String("upstream", "", "host:port to proxy to (required)")
		seed      = flag.Int64("seed", 1, "seed for the deterministic fault stream")
		pass      = flag.Int("pass", 1, "relative weight of faithful connections")
		drop      = flag.Int("drop", 0, "relative weight of dropped connections")
		delay     = flag.Int("delay", 0, "relative weight of delayed connections")
		blackhole = flag.Int("blackhole", 0, "relative weight of blackholed connections")
		reset     = flag.Int("reset", 0, "relative weight of RST connections")
		latency   = flag.Duration("latency", 50*time.Millisecond, "hold applied to delayed connections")
	)
	flag.Parse()
	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -upstream is required")
		os.Exit(2)
	}

	p, err := chaosproxy.New(*upstream, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosproxy: %v\n", err)
		os.Exit(1)
	}
	p.SetPlan(chaosproxy.Plan{
		Pass:      *pass,
		Drop:      *drop,
		Delay:     *delay,
		Blackhole: *blackhole,
		Reset:     *reset,
		Latency:   *latency,
	})
	fmt.Printf("chaosproxy: listening on %s (upstream %s)\n", p.URL(), *upstream)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	snap := p.Snapshot()
	p.Close()
	fmt.Printf("chaosproxy: stopped (accepted=%d passed=%d dropped=%d delayed=%d blackholed=%d resets=%d)\n",
		snap.Accepted, snap.Passed, snap.Dropped, snap.Delayed, snap.Blackhole, snap.Resets)
}
