// Command scrubloadgen is the overload harness for scrubd's ingestion
// path: it floods a daemon with a configurable mix of tenants, priority
// classes, deadlines, and duplicate specs, records per-class submission
// latency and every admission verdict (accepted, cache hit, dedup, rate
// limited, shed, queue-full), watches /healthz for shed-state
// transitions while the flood runs, and writes the whole measurement to
// a BENCH JSON file.
//
// Usage:
//
//	scrubloadgen [-addr URL] [-jobs N] [-batch N] [-conc N] [-tenants N]
//	             [-unique N] [-deadline-pct F] [-deadline-sec F]
//	             [-horizon F] [-replicas N] [-queue N] [-workers N]
//	             [-aging D] [-no-journal] [-out FILE]
//
// With -addr it drives an existing daemon; without it, it boots an
// in-process scrubd core (real HTTP listener, real simulations, shedding
// on with default watermarks, journal group commit on) so a single
// command produces a reproducible benchmark. Specs are the smoke-test
// miniature geometry; -unique bounds the distinct fingerprints so the
// duplicate-heavy tail exercises dedup and the result cache the way a
// production flood would.
//
// Exit status is 0 as long as the flood and drain complete; admission
// refusals are measurements, not errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrubloadgen:", err)
		os.Exit(1)
	}
}

// genConfig is the flag-settable shape of the flood.
type genConfig struct {
	Addr        string  `json:"addr,omitempty"`
	Jobs        int     `json:"jobs"`
	Batch       int     `json:"batch"`
	Conc        int     `json:"conc"`
	Tenants     int     `json:"tenants"`
	Unique      int     `json:"unique_specs"`
	DeadlinePct float64 `json:"deadline_pct"`
	DeadlineSec float64 `json:"deadline_sec"`
	Horizon     float64 `json:"horizon_sec"`
	Replicas    int     `json:"replicas"`
	Queue       int     `json:"queue"`
	Workers     int     `json:"workers"`
	Aging       string  `json:"aging"`
	Journal     bool    `json:"journal"`
	Seed        int64   `json:"seed"`
}

// classStats aggregates one scheduling class's outcomes.
type classStats struct {
	Sent        int64   `json:"sent"`
	Accepted    int64   `json:"accepted"`
	CacheHits   int64   `json:"cache_hits"`
	Deduped     int64   `json:"deduped"`
	RateLimited int64   `json:"rate_limited_429"`
	Shed        int64   `json:"shed_503"`
	QueueFull   int64   `json:"queue_full_429"`
	Rejected    int64   `json:"rejected_other"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// transition is one observed shed-state change.
type transition struct {
	AtSec float64 `json:"at_sec"`
	From  string  `json:"from"`
	To    string  `json:"to"`
}

// benchReport is the BENCH_service.json payload.
type benchReport struct {
	Config         genConfig             `json:"config"`
	SubmitSeconds  float64               `json:"submit_seconds"`
	DrainSeconds   float64               `json:"drain_seconds"`
	SubmitPerSec   float64               `json:"submits_per_sec"`
	CompletedJobs  int64                 `json:"completed_jobs"`
	CompletedPerSc float64               `json:"completed_per_sec"`
	DupHitRate     float64               `json:"duplicate_fingerprint_hit_rate"`
	Classes        map[string]classStats `json:"classes"`
	ShedStates     []transition          `json:"shed_transitions"`
	FinalState     string                `json:"final_state"`
	MaxQueueDepth  int                   `json:"max_queue_depth"`
	Journal        map[string]float64    `json:"journal,omitempty"`
}

func run() error {
	var (
		addr     = flag.String("addr", "", "existing scrubd base URL (empty = boot an in-process daemon)")
		jobs     = flag.Int("jobs", 100000, "total job submissions to issue")
		batch    = flag.Int("batch", 64, "specs per POST /v1/jobs/batch request (1 = single POST /v1/jobs)")
		conc     = flag.Int("conc", 8, "concurrent submitting clients")
		tenants  = flag.Int("tenants", 6, "distinct X-Scrubd-Tenant values")
		unique   = flag.Int("unique", 2000, "distinct spec fingerprints (the rest are duplicates)")
		dlPct    = flag.Float64("deadline-pct", 0.25, "fraction of jobs carrying a deadline")
		dlSec    = flag.Float64("deadline-sec", 600, "deadline distance from submission (seconds)")
		horizon  = flag.Float64("horizon", 2000, "simulated seconds per spec (job cost knob)")
		replicas = flag.Int("replicas", 1, "Monte Carlo replicas per spec (job cost knob)")
		queueCap = flag.Int("queue", 512, "in-process daemon queue capacity")
		workers  = flag.Int("workers", 0, "in-process daemon worker pool (0 = GOMAXPROCS)")
		aging    = flag.Duration("aging", 5*time.Second, "in-process daemon starvation-avoidance knob")
		noJnl    = flag.Bool("no-journal", false, "disable the in-process daemon's write-ahead journal")
		seed     = flag.Int64("seed", 1, "load-mix random seed")
		out      = flag.String("out", "BENCH_service.json", "benchmark report path (empty = stdout only)")
	)
	flag.Parse()
	cfg := genConfig{
		Addr: *addr, Jobs: *jobs, Batch: *batch, Conc: *conc,
		Tenants: *tenants, Unique: *unique,
		DeadlinePct: *dlPct, DeadlineSec: *dlSec,
		Horizon: *horizon, Replicas: *replicas,
		Queue: *queueCap, Workers: *workers, Aging: aging.String(),
		Journal: !*noJnl, Seed: *seed,
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Conc < 1 {
		cfg.Conc = 1
	}
	if cfg.Unique < 1 {
		cfg.Unique = 1
	}

	base := cfg.Addr
	if base == "" {
		var stop func()
		var err error
		base, stop, err = selfHost(cfg)
		if err != nil {
			return err
		}
		defer stop()
	}
	base = strings.TrimSuffix(base, "/")
	fmt.Printf("scrubloadgen: target %s (%d jobs, batch %d, %d clients)\n", base, cfg.Jobs, cfg.Batch, cfg.Conc)

	rep := benchReport{Config: cfg, Classes: make(map[string]classStats)}

	// Monitor: poll /healthz for shed-state transitions and queue depth
	// while the flood runs and drains.
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	var monMu sync.Mutex
	start := time.Now()
	last := ""
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monStop:
				return
			case <-tick.C:
			}
			state, depth := pollAdmission(base)
			if state == "" {
				continue
			}
			monMu.Lock()
			if depth > rep.MaxQueueDepth {
				rep.MaxQueueDepth = depth
			}
			if state != last {
				if last != "" {
					rep.ShedStates = append(rep.ShedStates, transition{
						AtSec: time.Since(start).Seconds(), From: last, To: state,
					})
					fmt.Printf("scrubloadgen: shed state %s -> %s (t=%.2fs, depth %d)\n",
						last, state, time.Since(start).Seconds(), depth)
				}
				last = state
			}
			monMu.Unlock()
		}
	}()

	// The flood: conc clients pull batch-sized slices of the job stream.
	type shot struct {
		class   service.Class
		rttMs   float64
		status  int
		deduped bool
		hit     bool
	}
	results := make([][]shot, cfg.Conc)
	next := make(chan int, cfg.Conc)
	go func() {
		for off := 0; off < cfg.Jobs; off += cfg.Batch {
			next <- off
		}
		close(next)
	}()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			client := &http.Client{Timeout: 2 * time.Minute}
			local := make([]shot, 0, cfg.Jobs/cfg.Conc+cfg.Batch)
			for off := range next {
				n := cfg.Batch
				if off+n > cfg.Jobs {
					n = cfg.Jobs - off
				}
				specs := make([]specJSON, n)
				classes := make([]service.Class, n)
				for i := 0; i < n; i++ {
					specs[i], classes[i] = makeSpec(rng, cfg)
				}
				tenant := fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants))
				t0 := time.Now()
				statuses, dedups, hits, err := submit(client, base, tenant, specs)
				rtt := float64(time.Since(t0).Microseconds()) / 1000
				if err != nil {
					fmt.Fprintf(os.Stderr, "scrubloadgen: submit: %v\n", err)
					continue
				}
				for i := 0; i < n; i++ {
					local = append(local, shot{
						class: classes[i], rttMs: rtt,
						status: statuses[i], deduped: dedups[i], hit: hits[i],
					})
				}
			}
			results[c] = local
		}(c)
	}
	wg.Wait()
	submitWall := time.Since(start)

	// Drain: wait until the queue empties so recovery-to-healthy and the
	// completion throughput are part of the measurement.
	drainStart := time.Now()
	for {
		state, depth := pollAdmission(base)
		if state != "" && depth == 0 {
			break
		}
		if time.Since(drainStart) > 10*time.Minute {
			fmt.Fprintln(os.Stderr, "scrubloadgen: drain timed out")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	// One extra beat so the monitor records the post-drain state.
	time.Sleep(200 * time.Millisecond)
	close(monStop)
	monWG.Wait()
	rep.FinalState = last
	fmt.Printf("scrubloadgen: final state %s\n", rep.FinalState)

	// Aggregate per class.
	perClass := map[service.Class][]float64{}
	stats := map[service.Class]*classStats{}
	for c := service.ClassBatch; c <= service.ClassInteractive; c++ {
		stats[c] = &classStats{}
	}
	var accepted, dupHits int64
	for _, local := range results {
		for _, sh := range local {
			st := stats[sh.class]
			st.Sent++
			switch {
			case sh.status == http.StatusOK || sh.status == http.StatusAccepted:
				st.Accepted++
				accepted++
				if sh.hit {
					st.CacheHits++
					dupHits++
				} else if sh.deduped {
					st.Deduped++
					dupHits++
				}
				perClass[sh.class] = append(perClass[sh.class], sh.rttMs)
			case sh.status == http.StatusServiceUnavailable:
				st.Shed++
			case sh.status == http.StatusTooManyRequests:
				// Without per-item headers the 429 split is by mode: the
				// daemon's rate limiter answers per-tenant, queue-full is
				// the terminal 429. Both are back-pressure; count together
				// under queue_full unless a rate limiter is configured.
				st.QueueFull++
			default:
				st.Rejected++
			}
		}
	}
	for c, st := range stats {
		lat := perClass[c]
		sort.Float64s(lat)
		st.P50Ms = percentile(lat, 0.50)
		st.P99Ms = percentile(lat, 0.99)
		if len(lat) > 0 {
			st.MaxMs = lat[len(lat)-1]
		}
		rep.Classes[c.String()] = *st
	}
	if accepted > 0 {
		rep.DupHitRate = float64(dupHits) / float64(accepted)
	}
	rep.SubmitSeconds = submitWall.Seconds()
	rep.DrainSeconds = time.Since(drainStart).Seconds()
	if rep.SubmitSeconds > 0 {
		rep.SubmitPerSec = float64(cfg.Jobs) / rep.SubmitSeconds
	}

	// Final metrics scrape: completion totals and journal group commits.
	m := scrapeMetrics(base)
	rep.CompletedJobs = int64(m["scrubd_jobs_completed_total"])
	total := rep.SubmitSeconds + rep.DrainSeconds
	if total > 0 {
		rep.CompletedPerSc = float64(rep.CompletedJobs) / total
	}
	if v, ok := m["scrubd_journal_records_total"]; ok {
		rep.Journal = map[string]float64{
			"records":       v,
			"fsyncs":        m["scrubd_journal_fsyncs_total"],
			"group_commits": m["scrubd_journal_group_commits_total"],
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("scrubloadgen: %d jobs in %.2fs submit + %.2fs drain (%.0f submits/s, %.0f completions/s, dup hit rate %.3f)\n",
		cfg.Jobs, rep.SubmitSeconds, rep.DrainSeconds, rep.SubmitPerSec, rep.CompletedPerSc, rep.DupHitRate)
	for _, c := range []service.Class{service.ClassInteractive, service.ClassNormal, service.ClassBatch} {
		st := rep.Classes[c.String()]
		fmt.Printf("scrubloadgen: %-11s sent %6d accepted %6d shed %5d p50 %.2fms p99 %.2fms\n",
			c, st.Sent, st.Accepted, st.Shed, st.P50Ms, st.P99Ms)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("scrubloadgen: wrote %s\n", *out)
	} else {
		fmt.Println(string(blob))
	}
	return nil
}

// specJSON is the submitted wire spec; the miniature smoke geometry
// keeps a fresh simulation in the low milliseconds.
type specJSON struct {
	Mechanism  string   `json:"mechanism"`
	Workload   string   `json:"workload"`
	HorizonSec float64  `json:"horizon_sec"`
	Seed       uint64   `json:"seed"`
	Replicas   int      `json:"replicas,omitempty"`
	Geometry   geomJSON `json:"geometry"`
	Priority   string   `json:"priority,omitempty"`
	DeadlineAt string   `json:"deadline_at,omitempty"`
}

type geomJSON struct {
	Channels     int `json:"channels"`
	RanksPerChan int `json:"ranks_per_chan"`
	BanksPerRank int `json:"banks_per_rank"`
	RowsPerBank  int `json:"rows_per_bank"`
	LinesPerRow  int `json:"lines_per_row"`
	LineBytes    int `json:"line_bytes"`
}

// makeSpec draws one job from the load mix: a seed from the bounded
// unique pool (duplicates are the point), a priority from a 20/50/30
// interactive/normal/batch split, and sometimes a deadline.
func makeSpec(rng *rand.Rand, cfg genConfig) (specJSON, service.Class) {
	s := specJSON{
		Mechanism:  "basic",
		Workload:   "db-oltp",
		HorizonSec: cfg.Horizon,
		Seed:       uint64(rng.Intn(cfg.Unique)) + 1,
		Replicas:   cfg.Replicas,
		Geometry: geomJSON{
			Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
			RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
		},
	}
	class := service.ClassNormal
	switch r := rng.Float64(); {
	case r < 0.20:
		class = service.ClassInteractive
	case r >= 0.70:
		class = service.ClassBatch
	}
	s.Priority = class.String()
	if rng.Float64() < cfg.DeadlinePct {
		s.DeadlineAt = time.Now().Add(time.Duration(cfg.DeadlineSec * float64(time.Second))).Format(time.RFC3339Nano)
	}
	return s, class
}

// submit posts one batch (or a single job when the batch size is 1) and
// returns per-spec statuses plus dedup/cache-hit markers.
func submit(client *http.Client, base, tenant string, specs []specJSON) (statuses []int, dedups, hits []bool, err error) {
	statuses = make([]int, len(specs))
	dedups = make([]bool, len(specs))
	hits = make([]bool, len(specs))
	if len(specs) == 1 {
		body, _ := json.Marshal(specs[0])
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Scrubd-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, nil, err
		}
		var sub struct {
			CacheHit bool `json:"cache_hit"`
			Deduped  bool `json:"deduped"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		_ = json.Unmarshal(raw, &sub)
		statuses[0], dedups[0], hits[0] = resp.StatusCode, sub.Deduped, sub.CacheHit
		return statuses, dedups, hits, nil
	}
	body, _ := json.Marshal(struct {
		Specs []specJSON `json:"specs"`
	}{specs})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs/batch", bytes.NewReader(body))
	if err != nil {
		return nil, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Scrubd-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, nil, nil, fmt.Errorf("batch submit: %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var br struct {
		Results []struct {
			Status   int  `json:"status"`
			CacheHit bool `json:"cache_hit"`
			Deduped  bool `json:"deduped"`
		} `json:"results"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&br); err != nil {
		return nil, nil, nil, fmt.Errorf("batch submit: decode: %w", err)
	}
	if len(br.Results) != len(specs) {
		return nil, nil, nil, fmt.Errorf("batch submit: %d results for %d specs", len(br.Results), len(specs))
	}
	for i, r := range br.Results {
		statuses[i], dedups[i], hits[i] = r.Status, r.Deduped, r.CacheHit
	}
	return statuses, dedups, hits, nil
}

// pollAdmission reads /healthz's admission block.
func pollAdmission(base string) (state string, depth int) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "", 0
	}
	defer resp.Body.Close()
	var h struct {
		Admission *struct {
			State      string `json:"state"`
			QueueDepth int    `json:"queue_depth"`
		} `json:"admission"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) != nil || h.Admission == nil {
		return "", 0
	}
	return h.Admission.State, h.Admission.QueueDepth
}

// scrapeMetrics pulls the Prometheus exposition into a name → value map
// (unlabelled samples only, which is all scrubd emits).
func scrapeMetrics(base string) map[string]float64 {
	m := map[string]float64{}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return m
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var val float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &val); err == nil {
			m[name] = val
		}
	}
	return m
}

// percentile reads the q-th quantile from an ascending slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// selfHost boots a full scrubd core — priority queue, shedding at the
// default watermarks, journal group commit — behind a real listener, and
// returns its base URL plus a stop func.
func selfHost(cfg genConfig) (string, func(), error) {
	var jn *journal.Journal
	var rec *journal.Recovery
	jdir := ""
	if cfg.Journal {
		dir, err := os.MkdirTemp("", "scrubloadgen-journal-")
		if err != nil {
			return "", nil, err
		}
		jdir = dir
		jn, rec, err = journal.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return "", nil, err
		}
	}
	shed := service.DefaultShedConfig()
	aging, _ := time.ParseDuration(cfg.Aging)
	svc := service.New(service.Config{
		QueueCapacity: cfg.Queue,
		Workers:       cfg.Workers,
		CacheCapacity: 4096,
		Journal:       jn,
		Shed:          &shed,
		Aging:         aging,
	})
	// The local harness honours whatever -batch the run asked for; the
	// spec-count cap is a production-facing guard, not a harness limit.
	hcfg := service.HandlerConfig{Role: "standalone", MaxBatchSpecs: max(cfg.Batch, service.DefaultMaxBatchSpecs)}
	if jn != nil {
		hcfg.ExtraMetrics = func(out io.Writer) error { return jn.WritePrometheus(out, rec) }
	}
	handler := service.NewHandlerWith(svc, hcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(shCtx)
		if jn != nil {
			jn.Close()
		}
		if jdir != "" {
			os.RemoveAll(jdir)
		}
	}
	return "http://" + ln.Addr().String(), stop, nil
}
