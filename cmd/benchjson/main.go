// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a small machine-readable JSON document on stdout, so perf
// baselines can be committed and diffed (see `make bench`, which writes
// BENCH_engine.json).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/engine | benchjson > BENCH_engine.json
//
// The output keeps the benchstat-friendly raw lines alongside the parsed
// numbers, and — when both the pooled engine and the legacy-shaped
// benchmark are present — computes the allocation and time reduction of
// the pooled path, the figures the issue's acceptance bar is stated in.
//
// Codec benchmark pairs (a sub-benchmark plus its ".../ref" scalar
// sibling, see internal/ecc and internal/ondie) are additionally folded
// into a "codecs" comparison block carrying the kernel-vs-reference
// speedup ratio per codec. A second mode,
//
//	go run ./cmd/benchjson -gate BENCH_engine.json
//
// re-reads a committed baseline and fails unless every gated codec holds
// its ratio floor (BCH line decode >= -min-bch, SECDED line decode >=
// -min-secded); CI runs it after `make bench`. Ratios are gated rather
// than wall-clock numbers because both sides of a pair run on the same
// box in the same process, so machine noise largely cancels.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name with the -cpu suffix retained
	// (e.g. "BenchmarkEngineRun-8").
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// triple. BytesPerOp/AllocsPerOp are -1 when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Raw is the untouched benchmark line, kept benchstat-compatible.
	Raw string `json:"raw"`
}

// Comparison relates the pooled engine benchmark to the legacy-shaped
// one (pooling disabled), expressing the refactor's win as percentages.
type Comparison struct {
	Engine string `json:"engine"`
	Legacy string `json:"legacy"`
	// AllocReductionPct is 100*(1 - engine.allocs/legacy.allocs).
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	BytesReductionPct float64 `json:"bytes_reduction_pct"`
	TimeReductionPct  float64 `json:"time_reduction_pct"`
}

// CodecComparison relates one codec's kernel benchmark to its ".../ref"
// scalar sibling. Speedup is ref_ns/kernel_ns, the ratio CI gates.
type CodecComparison struct {
	// Name is the pair's shared stem without the "Benchmark" prefix,
	// e.g. "BCHDecode/t=4" or "SECDEDLineDecode/line".
	Name     string  `json:"name"`
	Kernel   string  `json:"kernel"`
	Ref      string  `json:"ref"`
	KernelNs float64 `json:"kernel_ns_per_op"`
	RefNs    float64 `json:"ref_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// Report is the document benchjson emits.
type Report struct {
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	Package    string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Comparison *Comparison       `json:"comparison,omitempty"`
	Codecs     []CodecComparison `json:"codecs,omitempty"`
}

func main() {
	gateFile := flag.String("gate", "", "gate mode: read this BENCH json file and fail if any codec speedup is below its floor")
	minBCH := flag.Float64("min-bch", 5, "minimum BCHDecode kernel speedup in gate mode")
	minSECDED := flag.Float64("min-secded", 3, "minimum SECDEDLineDecode kernel speedup in gate mode")
	flag.Parse()
	if *gateFile != "" {
		if err := gate(*gateFile, *minBCH, *minSECDED); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (run with `go test -bench . -benchmem`)")
	}
	rep.Comparison = compare(rep.Benchmarks)
	rep.Codecs = codecComparisons(rep.Benchmarks)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// gate re-reads an emitted report and enforces the codec speedup floors:
// every BCHDecode pair must hold minBCH and every SECDEDLineDecode pair
// minSECDED (other pairs, like OnDieDecode, are informational). Both
// families must be present — an empty block must fail, not pass.
func gate(path string, minBCH, minSECDED float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var gatedBCH, gatedSECDED int
	var failed []string
	for _, c := range rep.Codecs {
		floor := 0.0
		switch {
		case strings.HasPrefix(c.Name, "BCHDecode"):
			floor = minBCH
			gatedBCH++
		case strings.HasPrefix(c.Name, "SECDEDLineDecode"):
			floor = minSECDED
			gatedSECDED++
		}
		status := "info"
		if floor > 0 {
			status = fmt.Sprintf("floor %.1fx", floor)
			if c.Speedup < floor {
				status += " FAIL"
				failed = append(failed, c.Name)
			}
		}
		fmt.Printf("%-28s kernel %10.1f ns/op  ref %10.1f ns/op  speedup %5.2fx  [%s]\n",
			c.Name, c.KernelNs, c.RefNs, c.Speedup, status)
	}
	if gatedBCH == 0 || gatedSECDED == 0 {
		return fmt.Errorf("%s: codecs block missing gated entries (BCHDecode: %d, SECDEDLineDecode: %d)", path, gatedBCH, gatedSECDED)
	}
	if len(failed) > 0 {
		return fmt.Errorf("codec speedup below floor: %s", strings.Join(failed, ", "))
	}
	return nil
}

// stripCPUSuffix drops the trailing "-N" GOMAXPROCS marker go test
// appends to benchmark names.
func stripCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// codecComparisons pairs every ".../ref" benchmark with its kernel
// sibling (the same name without the suffix).
func codecComparisons(bs []Benchmark) []CodecComparison {
	byName := make(map[string]*Benchmark, len(bs))
	for i := range bs {
		byName[stripCPUSuffix(bs[i].Name)] = &bs[i]
	}
	var out []CodecComparison
	for i := range bs {
		name := stripCPUSuffix(bs[i].Name)
		base, ok := strings.CutSuffix(name, "/ref")
		if !ok {
			continue
		}
		fast := byName[base]
		if fast == nil || fast.NsPerOp <= 0 || bs[i].NsPerOp <= 0 {
			continue
		}
		out = append(out, CodecComparison{
			Name:     strings.TrimPrefix(base, "Benchmark"),
			Kernel:   fast.Name,
			Ref:      bs[i].Name,
			KernelNs: fast.NsPerOp,
			RefNs:    bs[i].NsPerOp,
			Speedup:  bs[i].NsPerOp / fast.NsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// parse scans go test output, keeping header metadata and every
// "Benchmark..." result line. Unrecognised lines (PASS, ok, test logs)
// are ignored so the tool can sit directly on a `go test` pipe.
func parse(in *os.File) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package runs (`go test -bench ... ./a ./b`) emit one
			// header per package; keep them all.
			p := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if rep.Package == "" {
				rep.Package = p
			} else if !strings.Contains(rep.Package, p) {
				rep.Package += ", " + p
			}
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   612   1958339 ns/op   6238 B/op   41 allocs/op
//
// returning ok=false for lines that merely start with "Benchmark" (such
// as a benchmark's own log output).
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1, Raw: line}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// compare pairs the pooled engine benchmark with the legacy-shaped one;
// nil when either is absent or lacks -benchmem columns.
func compare(bs []Benchmark) *Comparison {
	var engine, legacy *Benchmark
	for i := range bs {
		switch {
		case strings.HasPrefix(bs[i].Name, "BenchmarkEngineRun"):
			engine = &bs[i]
		case strings.HasPrefix(bs[i].Name, "BenchmarkLegacySimRun"):
			legacy = &bs[i]
		}
	}
	if engine == nil || legacy == nil ||
		engine.AllocsPerOp < 0 || legacy.AllocsPerOp <= 0 ||
		legacy.BytesPerOp <= 0 || legacy.NsPerOp <= 0 {
		return nil
	}
	pct := func(eng, leg float64) float64 {
		return 100 * (1 - eng/leg)
	}
	return &Comparison{
		Engine:            engine.Name,
		Legacy:            legacy.Name,
		AllocReductionPct: pct(float64(engine.AllocsPerOp), float64(legacy.AllocsPerOp)),
		BytesReductionPct: pct(float64(engine.BytesPerOp), float64(legacy.BytesPerOp)),
		TimeReductionPct:  pct(engine.NsPerOp, legacy.NsPerOp),
	}
}
