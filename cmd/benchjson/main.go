// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a small machine-readable JSON document on stdout, so perf
// baselines can be committed and diffed (see `make bench`, which writes
// BENCH_engine.json).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/engine | benchjson > BENCH_engine.json
//
// The output keeps the benchstat-friendly raw lines alongside the parsed
// numbers, and — when both the pooled engine and the legacy-shaped
// benchmark are present — computes the allocation and time reduction of
// the pooled path, the figures the issue's acceptance bar is stated in.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name with the -cpu suffix retained
	// (e.g. "BenchmarkEngineRun-8").
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// triple. BytesPerOp/AllocsPerOp are -1 when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Raw is the untouched benchmark line, kept benchstat-compatible.
	Raw string `json:"raw"`
}

// Comparison relates the pooled engine benchmark to the legacy-shaped
// one (pooling disabled), expressing the refactor's win as percentages.
type Comparison struct {
	Engine string `json:"engine"`
	Legacy string `json:"legacy"`
	// AllocReductionPct is 100*(1 - engine.allocs/legacy.allocs).
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	BytesReductionPct float64 `json:"bytes_reduction_pct"`
	TimeReductionPct  float64 `json:"time_reduction_pct"`
}

// Report is the document benchjson emits.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Comparison *Comparison `json:"comparison,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (run with `go test -bench . -benchmem`)")
	}
	rep.Comparison = compare(rep.Benchmarks)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse scans go test output, keeping header metadata and every
// "Benchmark..." result line. Unrecognised lines (PASS, ok, test logs)
// are ignored so the tool can sit directly on a `go test` pipe.
func parse(in *os.File) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   612   1958339 ns/op   6238 B/op   41 allocs/op
//
// returning ok=false for lines that merely start with "Benchmark" (such
// as a benchmark's own log output).
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1, Raw: line}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// compare pairs the pooled engine benchmark with the legacy-shaped one;
// nil when either is absent or lacks -benchmem columns.
func compare(bs []Benchmark) *Comparison {
	var engine, legacy *Benchmark
	for i := range bs {
		switch {
		case strings.HasPrefix(bs[i].Name, "BenchmarkEngineRun"):
			engine = &bs[i]
		case strings.HasPrefix(bs[i].Name, "BenchmarkLegacySimRun"):
			legacy = &bs[i]
		}
	}
	if engine == nil || legacy == nil ||
		engine.AllocsPerOp < 0 || legacy.AllocsPerOp <= 0 ||
		legacy.BytesPerOp <= 0 || legacy.NsPerOp <= 0 {
		return nil
	}
	pct := func(eng, leg float64) float64 {
		return 100 * (1 - eng/leg)
	}
	return &Comparison{
		Engine:            engine.Name,
		Legacy:            legacy.Name,
		AllocReductionPct: pct(float64(engine.AllocsPerOp), float64(legacy.AllocsPerOp)),
		BytesReductionPct: pct(float64(engine.BytesPerOp), float64(legacy.BytesPerOp)),
		TimeReductionPct:  pct(engine.NsPerOp, legacy.NsPerOp),
	}
}
