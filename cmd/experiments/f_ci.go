package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F15", Title: "Headline stability across seeds (Monte Carlo error bars)", Run: runF15})
}

// runF15 quantifies the statistical spread of the headline comparison:
// basic vs combined on the drift-bound workload, replicated across
// independent seeds with paired-difference standard errors. A reproduction
// that only reports one seed can't distinguish a mechanism effect from
// Monte Carlo luck; this table shows the effect dwarfs the noise.
func runF15(env *environment) ([]core.Table, error) {
	sys := env.sys
	replicas := 5
	if env.quick {
		replicas = 3
	}
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	basicM, err := core.SuiteMechanism(sys, "basic")
	if err != nil {
		return nil, err
	}
	combM, err := core.SuiteMechanism(sys, "combined")
	if err != nil {
		return nil, err
	}
	base, err := env.runReplicated(sys, basicM, w, replicas)
	if err != nil {
		return nil, err
	}
	prop, err := env.runReplicated(sys, combM, w, replicas)
	if err != nil {
		return nil, err
	}
	ci, err := core.CompareReplicated(base, prop)
	if err != nil {
		return nil, err
	}

	t := core.Table{
		Title:  fmt.Sprintf("Per-metric spread over %d seeds (idle-archive)", replicas),
		Header: []string{"metric", "basic mean±se", "combined mean±se"},
	}
	t.AddRow("UEs",
		fmt.Sprintf("%.1f ± %.1f", base.UEs.Mean(), base.UEs.StdErr()),
		fmt.Sprintf("%.1f ± %.1f", prop.UEs.Mean(), prop.UEs.StdErr()))
	t.AddRow("scrub writes",
		fmt.Sprintf("%.0f ± %.0f", base.ScrubWrites.Mean(), base.ScrubWrites.StdErr()),
		fmt.Sprintf("%.0f ± %.0f", prop.ScrubWrites.Mean(), prop.ScrubWrites.StdErr()))
	t.AddRow("scrub energy",
		fmt.Sprintf("%s ± %s", core.FmtEnergy(base.ScrubEnergy.Mean()), core.FmtEnergy(base.ScrubEnergy.StdErr())),
		fmt.Sprintf("%s ± %s", core.FmtEnergy(prop.ScrubEnergy.Mean()), core.FmtEnergy(prop.ScrubEnergy.StdErr())))

	hl := core.Table{
		Title:  "Headline reductions with paired standard errors",
		Header: []string{"metric", "mean ± se"},
	}
	hl.AddRow("UE reduction", fmt.Sprintf("%.2f%% ± %.2f", ci.UEReductionPct, ci.UEReductionStderr))
	hl.AddRow("write factor", fmt.Sprintf("%.1fx ± %.1f", ci.WriteFactor, ci.WriteFactorStderr))
	hl.AddRow("energy reduction", fmt.Sprintf("%.2f%% ± %.2f", ci.EnergyReductionPct, ci.EnergyReductionSterr))
	return []core.Table{t, hl}, nil
}
