package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/scrub"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F6", Title: "Lightweight detection ablation", Run: runF6})
	register(experiment{ID: "F7", Title: "Write-back threshold sweep (soft vs hard errors)", Run: runF7})
	register(experiment{ID: "F12", Title: "Adaptive vs fixed interval under phased workload", Run: runF12})
}

// runF6 isolates the value of the light probe: identical scheme, interval
// and write rule, with and without the CRC fast path.
func runF6(env *environment) ([]core.Table, error) {
	sys := env.sys
	w, err := trace.ByName("web-serve")
	if err != nil {
		return nil, err
	}
	full, err := core.SuiteMechanism(sys, "strong-ecc")
	if err != nil {
		return nil, err
	}
	light, err := core.SuiteMechanism(sys, "light-detect")
	if err != nil {
		return nil, err
	}
	rFull, err := env.runOne(sys, full, w)
	if err != nil {
		return nil, err
	}
	rLight, err := env.runOne(sys, light, w)
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Full decode vs light detect (BCH-8, on-error, same interval)",
		Header: []string{"metric", "full-decode", "light-detect"}}
	t.AddRow("visits", core.FmtCount(rFull.ScrubVisits), core.FmtCount(rLight.ScrubVisits))
	t.AddRow("full decodes", core.FmtCount(rFull.ScrubDecodes), core.FmtCount(rLight.ScrubDecodes))
	t.AddRow("decodes avoided", "0",
		fmt.Sprintf("%.1f%%", 100*(1-float64(rLight.ScrubDecodes)/float64(rLight.ScrubVisits))))
	fullCheck := rFull.ScrubEnergy.ReadPJ + rFull.ScrubEnergy.DecodePJ + rFull.ScrubEnergy.DetectPJ
	lightCheck := rLight.ScrubEnergy.ReadPJ + rLight.ScrubEnergy.DecodePJ + rLight.ScrubEnergy.DetectPJ
	t.AddRow("check-path energy", core.FmtEnergy(fullCheck), core.FmtEnergy(lightCheck))
	t.AddRow("check-path saving", "-",
		fmt.Sprintf("%.1f%%", 100*(1-lightCheck/fullCheck)))
	t.AddRow("total scrub energy", core.FmtEnergy(rFull.ScrubEnergy.Total()), core.FmtEnergy(rLight.ScrubEnergy.Total()))
	t.AddRow("UEs", core.FmtCount(rFull.UEs), core.FmtCount(rLight.UEs))
	return []core.Table{t}, nil
}

// runF7 sweeps the write-back threshold: the dial between soft errors
// (higher threshold → lines run closer to the ECC margin) and hard errors
// (lower threshold → more scrub writes → endurance burned faster).
func runF7(env *environment) ([]core.Table, error) {
	sys := env.sys
	// Pre-age the device so endurance is a live concern: the weakest cell
	// of a 256-cell line dies around 2.2e7 writes with the default spread.
	sys.InitialLineWrites = 20_000_000
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	bch8 := ecc.MustBCHLine(8)
	interval, err := core.FixedIntervalFor(sys, bch8.T()-2)
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Threshold sweep (BCH-8, pre-aged 2e7 writes, idle-archive)",
		Header: []string{"threshold", "UEs", "scrub writes", "total line writes", "dead cells", "energy"}}
	for _, thr := range []int{1, 2, 4, 6, 8} {
		mech := core.Mechanism{
			Name:   fmt.Sprintf("thr-%d", thr),
			Scheme: bch8,
			Policy: scrub.MustNew(scrub.Config{
				Label: fmt.Sprintf("thr-%d", thr), Detect: scrub.LightDetect, WriteThreshold: thr,
			}),
			Interval: interval,
		}
		r, err := env.runOne(sys, mech, w)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", thr), core.FmtCount(r.UEs), core.FmtCount(r.ScrubWrites()),
			core.FmtCount(r.TotalLineWrites), core.FmtCount(r.DeadCells),
			core.FmtEnergy(r.ScrubEnergy.Total()))
	}
	// Wear-aware variant at the suite threshold for comparison.
	wa := core.Mechanism{
		Name:   "thr-6+wear",
		Scheme: bch8,
		Policy: scrub.MustNew(scrub.Config{
			Label: "thr-6+wear", Detect: scrub.LightDetect, WriteThreshold: 6, WearAware: true,
		}),
		Interval: interval,
	}
	r, err := env.runOne(sys, wa, w)
	if err != nil {
		return nil, err
	}
	t.AddRow("6 (wear-aware)", core.FmtCount(r.UEs), core.FmtCount(r.ScrubWrites()),
		core.FmtCount(r.TotalLineWrites), core.FmtCount(r.DeadCells),
		core.FmtEnergy(r.ScrubEnergy.Total()))
	return []core.Table{t}, nil
}

// runF12 compares a fixed-interval threshold policy with the adaptive
// controller under a workload whose write intensity swings between
// phases, so the "right" interval changes over time.
func runF12(env *environment) ([]core.Table, error) {
	sys := env.sys
	phased := trace.Workload{
		Name:                "phased-burst",
		WritesPerLinePerSec: 0.002,
		ReadsPerLinePerSec:  0.02,
		FootprintFrac:       1.0,
		ZipfSkew:            0.3,
		Phases: []trace.Phase{
			{DurationSec: sys.Horizon / 4, WriteMult: 4, ReadMult: 1},
			{DurationSec: sys.Horizon / 4, WriteMult: 0.01, ReadMult: 1},
		},
	}
	fixed, err := core.SuiteMechanism(sys, "threshold")
	if err != nil {
		return nil, err
	}
	adaptive, err := core.SuiteMechanism(sys, "combined")
	if err != nil {
		return nil, err
	}
	rF, err := env.runOne(sys, fixed, phased)
	if err != nil {
		return nil, err
	}
	rA, err := env.runOneWithOptions(sys, adaptive, phased, core.Options{RecordRounds: true})
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Fixed vs adaptive interval (phased workload)",
		Header: []string{"metric", "fixed threshold", "combined (adaptive)"}}
	t.AddRow("UEs", core.FmtCount(rF.UEs), core.FmtCount(rA.UEs))
	t.AddRow("scrub writes", core.FmtCount(rF.ScrubWrites()), core.FmtCount(rA.ScrubWrites()))
	t.AddRow("scrub energy", core.FmtEnergy(rF.ScrubEnergy.Total()), core.FmtEnergy(rA.ScrubEnergy.Total()))
	t.AddRow("sweeps", core.FmtCount(int64(rF.Sweeps)), core.FmtCount(int64(rA.Sweeps)))
	t.AddRow("final interval", core.FmtSeconds(rF.FinalInterval), core.FmtSeconds(rA.FinalInterval))

	// The figure itself: the controller's interval trajectory over the
	// run, one character per sweep, log-scaled between its bounds.
	traj := core.Table{Title: "Adaptive interval trajectory (one mark per sweep)",
		Header: []string{"series", "value"}}
	intervals := make([]float64, len(rA.Rounds))
	for i, rr := range rA.Rounds {
		intervals[i] = rr.Interval
	}
	traj.AddRow("interval", sparkline(intervals))
	traj.AddRow("range", fmt.Sprintf("%s .. %s", core.FmtSeconds(minOf(intervals)), core.FmtSeconds(maxOf(intervals))))
	writeBacks := make([]float64, len(rA.Rounds))
	for i, rr := range rA.Rounds {
		writeBacks[i] = float64(rr.Stats.WriteBacks)
	}
	traj.AddRow("write-backs", sparkline(writeBacks))
	return []core.Table{t, traj}, nil
}

// sparkline renders values as a block-character strip (log-ish scaling is
// left to the data; this maps linearly between min and max).
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := minOf(values), maxOf(values)
	out := make([]rune, len(values))
	for i, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		out[i] = blocks[idx]
	}
	return string(out)
}

func minOf(values []float64) float64 {
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(values []float64) float64 {
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
