package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ecp"
	"repro/internal/pcm"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F20", Title: "Error-correcting pointers vs aged-device UEs", Run: runF20})
}

// runF20 walks the hard-error companion mechanism: on a device aged to
// ~4-5 stuck cells per line, each ECP entry removes one stuck cell from
// the ECC's view, restoring drift-error margin. The experiment sweeps
// the entry count and reports the reliability payoff against the storage
// cost.
func runF20(env *environment) ([]core.Table, error) {
	sys := env.sys
	sys.InitialLineWrites = 30_000_000
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	mech, err := core.SuiteMechanism(sys, "threshold")
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "ECP sweep (BCH-8 threshold mechanism, device aged 3e7 writes)",
		Header: []string{"ECP entries", "storage bits/line", "stuck cells covered",
			"UEs", "scrub writes", "energy"}}
	for _, entries := range []int{0, 2, 4, 6, 8} {
		res, err := env.runOneWithOptions(sys, mech, w, core.Options{ECPEntries: entries})
		if err != nil {
			return nil, err
		}
		p := ecp.Params{Entries: entries, CellsPerLine: pcm.CellsPerLine, BitsPerCell: pcm.BitsPerCell}
		t.AddRow(fmt.Sprintf("%d", entries),
			fmt.Sprintf("%d", p.OverheadBits()),
			core.FmtCount(res.ECPCoveredCells),
			core.FmtCount(res.UEs),
			core.FmtCount(res.ScrubWrites()),
			core.FmtEnergy(res.ScrubEnergy.Total()))
	}
	return []core.Table{t}, nil
}
