package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/pcm"
)

func init() {
	register(experiment{ID: "F19", Title: "Cell density (SLC -> TLC -> QLC) vs scrub burden", Run: runF19})
}

// runF19 generalises the drift model to n levels packed into the same
// resistance window: every density step halves the inter-level margin,
// which collapses the safe scrub interval super-exponentially. This is
// the abstract's "MLC devices will suffer from resistance drift" claim
// turned into the density scaling law that made 3-bit PCM impractical.
func runF19(env *environment) ([]core.Table, error) {
	t := core.Table{Title: "Density scaling (uniform data, 512-bit payload)",
		Header: []string{"levels", "bits/cell", "cells/line", "margin (dec)",
			"E[errors] @ 1h", "safe interval (E<=1)", "sweeps/day @ 1 GiB"}}
	for _, levels := range []int{2, 4, 8, 16} {
		m, err := pcm.NewMultiLevel(levels)
		if err != nil {
			return nil, err
		}
		bits := m.BitsPerCell()
		cells := int(math.Round(512 / bits))
		margin := m.WindowDecades / float64(levels-1) / 2
		e1h := m.ExpectedLineErrors(cells, 3600)
		safe := m.SafeInterval(cells, 1.0)
		safeStr := core.FmtSeconds(safe)
		sweeps := "0"
		if safe >= math.Pow(10, m.MaxLog10Time) {
			safeStr = "unbounded"
		} else if safe > 0 {
			sweeps = fmt.Sprintf("%.1f", 86400/safe)
		} else {
			safeStr = "none"
			sweeps = "inf"
		}
		t.AddRow(fmt.Sprintf("%d", levels),
			fmt.Sprintf("%.0f", bits),
			fmt.Sprintf("%d", cells),
			fmt.Sprintf("%.3f", margin),
			fmt.Sprintf("%.3g", e1h),
			safeStr,
			sweeps)
	}
	note := core.Table{Title: "Reading the table", Header: []string{"point"}}
	note.AddRow("SLC margins dwarf drift: scrub is a formality")
	note.AddRow("2-bit MLC is the paper's regime: hours-scale scrub is mandatory")
	note.AddRow("3-bit TLC margins leave no usable scrub interval at these drift parameters")
	return []core.Table{t, note}, nil
}
