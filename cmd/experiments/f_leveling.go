package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F13", Title: "Start-Gap wear leveling vs scrub write traffic", Run: runF13})
}

// runF13 quantifies how wear leveling interacts with scrub policies: the
// basic policy's heavy write-back traffic concentrates on drift-prone
// cold lines, while Start-Gap spreads it — and the combined mechanism
// writes so little that leveling has far less work to do. Metrics: the
// wear hot-spot (max per-slot writes) with and without leveling, and the
// leveler's own write overhead.
func runF13(env *environment) ([]core.Table, error) {
	sys := env.sys
	w, err := trace.ByName("kv-store") // skewed writes: the leveling use-case
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Wear hot-spot with and without Start-Gap (kv-store)",
		Header: []string{"mechanism", "leveling", "max slot writes", "mean slot writes", "gap moves", "UEs"}}
	for _, mechName := range []string{"basic", "combined"} {
		mech, err := core.SuiteMechanism(sys, mechName)
		if err != nil {
			return nil, err
		}
		for _, period := range []uint64{0, 100} {
			levSys := sys
			res, err := env.runOneWithLeveling(levSys, mech, w, period)
			if err != nil {
				return nil, err
			}
			mean := float64(res.TotalLineWrites) / float64(res.Lines)
			levLabel := "off"
			if period > 0 {
				levLabel = fmt.Sprintf("gap/%d", period)
			}
			t.AddRow(mechName, levLabel,
				core.FmtCount(int64(res.MaxLineWrites)),
				fmt.Sprintf("%.1f", mean),
				core.FmtCount(res.LevelerMoves),
				core.FmtCount(res.UEs))
		}
	}
	return []core.Table{t}, nil
}
