package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F16", Title: "Program-and-verify precision vs scrub burden", Run: runF16})
}

// runF16 walks the write-precision dial: more program-and-verify
// iterations narrow σ_prog, which widens drift margins and lengthens the
// safe scrub interval — but every array write (demand included) pays for
// the extra pulses. The experiment reruns the combined mechanism on a
// cold and a hot workload at each precision point and reports where the
// total write energy optimum sits.
func runF16(env *environment) ([]core.Table, error) {
	pp := pcm.DefaultProgramParams()

	table := core.Table{Title: "Write precision sweep (combined mechanism)",
		Header: []string{"iterations", "sigma_prog", "write pJ/bit", "safe interval",
			"cold: scrub+demand energy", "cold UEs", "hot: scrub+demand energy", "hot UEs"}}

	cold, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	hot, err := trace.ByName("stream-write")
	if err != nil {
		return nil, err
	}

	for _, n := range []int{1, 2, 3, 4, 6} {
		sigma := pp.SigmaAfter(n)
		writePJ := pp.WriteEnergyPJPerBit(n)

		sys := env.sys
		sys.PCM.SigmaProg = sigma
		sys.Energy.ArrayWritePJPerBit = writePJ
		model, err := pcm.NewModel(sys.PCM)
		if err != nil {
			return nil, err
		}
		safe := model.ScrubIntervalFor(sys.Mix, pcm.CellsPerLine, 6, sys.RiskTarget)

		mech, err := core.CombinedMechanism(sys)
		if err != nil {
			return nil, err
		}
		rCold, err := env.runOne(sys, mech, cold)
		if err != nil {
			return nil, err
		}
		rHot, err := env.runOne(sys, mech, hot)
		if err != nil {
			return nil, err
		}
		coldE := rCold.ScrubEnergy.Total() + rCold.DemandEnergy.Total()
		hotE := rHot.ScrubEnergy.Total() + rHot.DemandEnergy.Total()
		table.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", sigma),
			fmt.Sprintf("%.0f", writePJ),
			core.FmtSeconds(safe),
			core.FmtEnergy(coldE),
			core.FmtCount(rCold.UEs),
			core.FmtEnergy(hotE),
			core.FmtCount(rHot.UEs),
		)
	}
	return []core.Table{table}, nil
}
