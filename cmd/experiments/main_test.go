package main

import (
	"sort"
	"strings"
	"testing"
)

func TestRegistryOrder(t *testing.T) {
	ids := []string{"F4", "T1", "F19", "F1", "F13", "F2"}
	sort.Slice(ids, func(i, j int) bool { return registryOrder(ids[i]) < registryOrder(ids[j]) })
	want := []string{"T1", "F1", "F2", "F4", "F13", "F19"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment in DESIGN.md's index must be registered exactly once.
	want := map[string]bool{"T1": true}
	for i := 1; i <= 22; i++ {
		want["F"+itoa(i)] = true
	}
	seen := map[string]bool{}
	for _, e := range registry {
		if seen[e.ID] {
			t.Errorf("experiment %s registered twice", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for id := range want {
		if !seen[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	for id := range seen {
		if !want[id] {
			t.Errorf("unexpected experiment %s", id)
		}
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	flat := sparkline([]float64{5, 5, 5})
	if flat != strings.Repeat("▁", 3) {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestMinMaxOf(t *testing.T) {
	vals := []float64{3, -1, 7, 2}
	if minOf(vals) != -1 || maxOf(vals) != 7 {
		t.Errorf("min/max = %v/%v", minOf(vals), maxOf(vals))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
