package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F17", Title: "SLC form-switch fraction vs scrub burden", Run: runF17})
	register(experiment{ID: "F18", Title: "UE detection: scrub vs demand-read race", Run: runF18})
}

// runF17 models form-switch storage (compressible lines held in SLC form,
// whose band separation makes drift negligible): as the compressible
// fraction grows, the scrub mechanism has proportionally less drift to
// chase. This reconstructs the interaction between the scrub paper and
// its companion MLC-write-improvement work.
func runF17(env *environment) ([]core.Table, error) {
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	mech, err := core.SuiteMechanism(env.sys, "threshold")
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "SLC fraction sweep (threshold mechanism, idle-archive)",
		Header: []string{"SLC fraction", "UEs", "scrub writes", "corrected bits", "scrub energy"}}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		res, err := env.runOneWithOptions(env.sys, mech, w, core.Options{SLCFraction: f})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", f*100),
			core.FmtCount(res.UEs),
			core.FmtCount(res.ScrubWrites()),
			core.FmtCount(res.CorrectedBits),
			core.FmtEnergy(res.ScrubEnergy.Total()))
	}
	return []core.Table{t}, nil
}

// runF18 asks the motivation question: without scrub's proactive sweeps,
// how many uncorrectable lines would software have read first, and how
// long do UEs sit latent? Shorter sweeps catch errors before software
// does — the basic rationale for patrol scrub.
func runF18(env *environment) ([]core.Table, error) {
	w, err := trace.ByName("web-serve") // read-heavy, write-light
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "UE latency and read race (web-serve)",
		Header: []string{"mechanism", "UEs", "read-first", "mean latency", "max latency"}}
	for _, name := range []string{"basic", "threshold", "combined"} {
		mech, err := core.SuiteMechanism(env.sys, name)
		if err != nil {
			return nil, err
		}
		res, err := env.runOne(env.sys, mech, w)
		if err != nil {
			return nil, err
		}
		readFirst := "n/a"
		meanLat, maxLat := "n/a", "n/a"
		if res.UEs > 0 {
			readFirst = fmt.Sprintf("%.0f%%", 100*float64(res.UEsReadFirst)/float64(res.UEs))
			meanLat = core.FmtSeconds(res.UEDetectDelay.Mean())
			maxLat = core.FmtSeconds(res.UEDetectDelay.Max())
		}
		t.AddRow(name, core.FmtCount(res.UEs), readFirst, meanLat, maxLat)
	}
	return []core.Table{t}, nil
}
