package main

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The helpers below are how experiments run simulations: they thread the
// environment's context (and with it the -timeout deadline) into every
// core entry point, so a stuck or oversized run aborts instead of hanging
// the whole regeneration.

func (env *environment) runOne(sys core.System, m core.Mechanism, w trace.Workload) (*sim.Result, error) {
	return core.RunOneContext(env.ctx, sys, m, w)
}

func (env *environment) runOneWithOptions(sys core.System, m core.Mechanism, w trace.Workload, o core.Options) (*sim.Result, error) {
	return core.RunOneWithOptionsContext(env.ctx, sys, m, w, o)
}

func (env *environment) runOneWithLeveling(sys core.System, m core.Mechanism, w trace.Workload, gapPeriod uint64) (*sim.Result, error) {
	return env.runOneWithOptions(sys, m, w, core.Options{GapMovePeriod: gapPeriod})
}

func (env *environment) runReplicated(sys core.System, m core.Mechanism, w trace.Workload, replicas int) (*core.Replicated, error) {
	return core.RunReplicatedContext(env.ctx, sys, m, w, replicas)
}
