package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// matrixBundle memoises the big mechanisms × workloads comparison shared
// by F3, F4, F5, F8 and F11.
type matrixBundle struct {
	mechs []core.Mechanism
	ws    []trace.Workload
	mx    *core.Matrix
}

// sharedMatrix runs (or returns the memoised) full comparison.
func (env *environment) sharedMatrix() (*matrixBundle, error) {
	if env.matrix != nil {
		return env.matrix, nil
	}
	mechs, err := core.Suite(env.sys)
	if err != nil {
		return nil, err
	}
	ws := trace.All()
	mx, err := core.RunMatrixContext(env.ctx, env.sys, mechs, ws)
	if err != nil {
		return nil, err
	}
	env.matrix = &matrixBundle{mechs: mechs, ws: ws, mx: mx}
	return env.matrix, nil
}

// perWorkloadTable renders one metric across the matrix, one row per
// mechanism, one column per workload plus a total.
func perWorkloadTable(title string, b *matrixBundle, metric func(mech, workload string) string, total func(mech string) string) core.Table {
	t := core.Table{Title: title}
	t.Header = append(t.Header, "mechanism")
	for _, w := range b.mx.Workloads {
		t.Header = append(t.Header, w)
	}
	t.Header = append(t.Header, "TOTAL")
	for _, m := range b.mx.Mechanisms {
		row := []string{m}
		for _, w := range b.mx.Workloads {
			row = append(row, metric(m, w))
		}
		row = append(row, total(m))
		t.AddRow(row...)
	}
	return t
}

// headlineTable renders the abstract's three numbers for a matrix.
func headlineTable(b *matrixBundle) (core.Table, error) {
	t := core.Table{
		Title:  "Headline vs paper abstract (basic -> combined)",
		Header: []string{"metric", "paper", "measured"},
	}
	h, err := b.mx.ComputeHeadline("basic", "combined")
	if err != nil {
		return t, err
	}
	t.AddRow("uncorrectable-error reduction", "96.5%", fmt.Sprintf("%.1f%%", h.UEReductionPct))
	t.AddRow("scrub-write reduction", "24.4x", fmt.Sprintf("%.1fx", h.WriteReductionFactor))
	t.AddRow("scrub-energy reduction", "37.8%", fmt.Sprintf("%.1f%%", h.EnergyReductionPct))
	return t, nil
}
