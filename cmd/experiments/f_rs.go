package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/stats"
)

func init() {
	register(experiment{ID: "F14", Title: "Symbol ECC (RS) vs bit ECC (BCH) under MLC cell errors", Run: runF14})
}

// runF14 compares Reed–Solomon and BCH protection through the *real
// codecs* under the two error shapes MLC PCM produces: drift misreads
// (one bit per cell, thanks to Gray coding) and stuck-cell corruptions
// (up to two bits inside one cell). BCH buys more correction per check
// bit on scattered single-bit errors; RS wins once errors cluster inside
// cells/symbols. This is the reconstructed ECC-choice discussion from the
// paper's design space.
func runF14(env *environment) ([]core.Table, error) {
	r := stats.NewRNG(env.sys.Seed + 1400)
	trials := 400
	if env.quick {
		trials = 100
	}
	codecs := []ecc.LineCodec{
		ecc.MustBCHLine(4),
		ecc.MustBCHLine(8),
		ecc.MustRSLine(4),
		ecc.MustRSLine(8),
	}
	geom := core.Table{Title: "Scheme storage", Header: []string{"scheme", "check bits", "overhead"}}
	for _, c := range codecs {
		geom.AddRow(c.Name(), fmt.Sprintf("%d", c.CheckBits()),
			fmt.Sprintf("%.1f%%", 100*float64(c.CheckBits())/float64(c.DataBits())))
	}

	single := core.Table{Title: fmt.Sprintf("Survival under 1-bit cell errors (drift shape), %d lines/point", trials),
		Header: []string{"cell errors"}}
	double := core.Table{Title: "Survival under 2-bit cell errors (stuck-cell shape)",
		Header: []string{"cell errors"}}
	for _, c := range codecs {
		single.Header = append(single.Header, c.Name())
		double.Header = append(double.Header, c.Name())
	}
	for _, nerr := range []int{2, 4, 6, 8, 10} {
		rowS := []string{fmt.Sprintf("%d", nerr)}
		rowD := []string{fmt.Sprintf("%d", nerr)}
		for _, c := range codecs {
			rowS = append(rowS, fmt.Sprintf("%.0f%%", 100*cellErrorSurvival(r, c, nerr, 1, trials)))
			rowD = append(rowD, fmt.Sprintf("%.0f%%", 100*cellErrorSurvival(r, c, nerr, 2, trials)))
		}
		single.AddRow(rowS...)
		double.AddRow(rowD...)
	}

	// The fault-map bonus: stuck symbols at *known* positions cost RS half
	// the budget (erasures), so a fault-tracking controller doubles the
	// hard-error capacity of the same code.
	fm := core.Table{Title: "Stuck symbols: plain decode vs fault-map decode (RS-4)",
		Header: []string{"stuck symbols", "plain", "fault map"}}
	rs4 := ecc.MustRSLine(4)
	for _, stuck := range []int{4, 6, 8, 9} {
		fm.AddRow(fmt.Sprintf("%d", stuck),
			fmt.Sprintf("%.0f%%", 100*faultMapSurvival(r, rs4, stuck, false, trials)),
			fmt.Sprintf("%.0f%%", 100*faultMapSurvival(r, rs4, stuck, true, trials)))
	}
	return []core.Table{geom, single, double, fm}, nil
}

// faultMapSurvival corrupts `stuck` whole symbols and decodes with or
// without the positions registered as erasures.
func faultMapSurvival(r *stats.RNG, l *ecc.RSLine, stuck int, useMap bool, trials int) float64 {
	ok := 0
	data := make([]byte, ecc.LineBytes)
	for trial := 0; trial < trials; trial++ {
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		cw, err := l.EncodeLine(data)
		if err != nil {
			return 0
		}
		seen := map[int]bool{}
		var faultMap []int
		for len(faultMap) < stuck {
			sym := r.Intn(l.Symbols())
			if seen[sym] {
				continue
			}
			seen[sym] = true
			faultMap = append(faultMap, sym)
			cw[sym] ^= byte(1 + r.Intn(255))
		}
		if useMap {
			_, err = l.DecodeLineWithFaultMap(cw, faultMap)
		} else {
			_, err = l.DecodeLine(cw)
		}
		if err == nil {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// cellErrorSurvival encodes random lines, injects nerr cell errors of
// bitsPerCell flipped bits each (in distinct cells), decodes, and returns
// the fraction of intact payloads.
func cellErrorSurvival(r *stats.RNG, codec ecc.LineCodec, nerr, bitsPerCell, trials int) float64 {
	ok := 0
	data := make([]byte, ecc.LineBytes)
	for trial := 0; trial < trials; trial++ {
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		cw, err := codec.EncodeLine(data)
		if err != nil {
			return 0
		}
		validCells := (codec.DataBits() + codec.CheckBits()) / 2
		seen := map[int]bool{}
		for len(seen) < nerr {
			c := r.Intn(validCells)
			if seen[c] {
				continue
			}
			seen[c] = true
			cw[(2*c)/8] ^= 1 << uint((2*c)%8)
			if bitsPerCell == 2 {
				pos := 2*c + 1
				cw[pos/8] ^= 1 << uint(pos%8)
			}
		}
		if _, err := codec.DecodeLine(cw); err != nil {
			continue
		}
		ok++
	}
	return float64(ok) / float64(trials)
}
