package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/pcm"
	"repro/internal/stats"
)

func init() {
	register(experiment{ID: "F1", Title: "Drift-induced cell error probability vs time", Run: runF1})
	register(experiment{ID: "F2", Title: "Line UE probability vs scrub interval per ECC scheme", Run: runF2})
}

// runF1 reproduces the motivating figure: per-cell soft-error probability
// as a function of time since write, per programmed level, analytic model
// cross-checked by brute-force Monte Carlo cells.
func runF1(env *environment) ([]core.Table, error) {
	model, err := pcm.NewModel(env.sys.PCM)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(env.sys.Seed + 100)
	cells := 200000
	if env.quick {
		cells = 20000
	}
	t := core.Table{
		Title:  "P(cell error) vs time since write (analytic | monte-carlo)",
		Header: []string{"time", "level 0 (SET)", "level 1", "level 2", "level 3 (RESET)"},
	}
	for _, secs := range []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
		row := []string{core.FmtSeconds(secs)}
		for level := 0; level < pcm.Levels; level++ {
			analytic := model.ErrProb(level, secs)
			crossed := 0
			for i := 0; i < cells; i++ {
				c := model.WriteCell(r, level)
				if model.CrossingTime(c) <= secs {
					crossed++
				}
			}
			mc := float64(crossed) / float64(cells)
			row = append(row, fmt.Sprintf("%.2e | %.2e", analytic, mc))
		}
		t.AddRow(row...)
	}
	note := core.Table{Title: "Expected errors per 256-cell line (uniform data)", Header: []string{"time", "E[errors]"}}
	for _, secs := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		note.AddRow(core.FmtSeconds(secs),
			fmt.Sprintf("%.3f", model.ExpectedLineErrors(pcm.UniformMix(), pcm.CellsPerLine, secs)))
	}
	return []core.Table{t, note}, nil
}

// runF2 computes, per ECC scheme, the probability that a line left alone
// for a candidate scrub interval has accumulated an uncorrectable pattern
// — the designer's curve for picking intervals per ECC strength.
func runF2(env *environment) ([]core.Table, error) {
	model, err := pcm.NewModel(env.sys.PCM)
	if err != nil {
		return nil, err
	}
	schemes := []ecc.Scheme{
		ecc.NewSECDEDLine(),
		ecc.MustBCHLine(2),
		ecc.MustBCHLine(4),
		ecc.MustBCHLine(8),
	}
	r := stats.NewRNG(env.sys.Seed + 200)
	placeTrials := 400
	if env.quick {
		placeTrials = 100
	}
	const maxErrs = 24
	t := core.Table{Title: "P(line uncorrectable) vs interval", Header: []string{"interval"}}
	for _, s := range schemes {
		t.Header = append(t.Header, s.Name())
	}
	for _, secs := range []float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6} {
		row := []string{core.FmtSeconds(secs)}
		// P(#errors = k) from the analytic tail, then fold with each
		// scheme's placement-dependent uncorrectability.
		pmf := make([]float64, maxErrs+1)
		prevTail := 1.0
		for k := 1; k <= maxErrs+1; k++ {
			tail := model.LineErrorTailGE(pcm.UniformMix(), pcm.CellsPerLine, k, secs)
			pmf[k-1] = prevTail - tail
			prevTail = tail
		}
		tailBeyond := prevTail
		for _, s := range schemes {
			pUE := tailBeyond // > maxErrs always uncorrectable for these schemes
			for k := 1; k <= maxErrs; k++ {
				if pmf[k] == 0 {
					continue
				}
				pUE += pmf[k] * ecc.UncorrectableProb(s, r, k, placeTrials)
			}
			row = append(row, fmt.Sprintf("%.2e", pUE))
		}
		t.AddRow(row...)
	}
	// Derived safe intervals at the system risk target.
	safe := core.Table{Title: fmt.Sprintf("Max interval at risk target %g", env.sys.RiskTarget),
		Header: []string{"scheme", "tolerable errors", "interval"}}
	for _, s := range schemes {
		tol := 1
		if s.Name() != "SECDED" {
			tol = s.T() - 2
			if tol < 1 {
				tol = 1
			}
		}
		iv := model.ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, tol, env.sys.RiskTarget)
		ivStr := core.FmtSeconds(iv)
		if math.IsInf(iv, 1) {
			ivStr = "unbounded"
		}
		safe.AddRow(s.Name(), fmt.Sprintf("%d", tol), ivStr)
	}
	return []core.Table{t, safe}, nil
}
