package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/ondie"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F22", Title: "On-die ECC and active error profiling (hidden-error regime)", Run: runF22})
}

// runF22 layers an on-die ECC code under the controller codec and
// measures the two consequences the HARP line of work predicts:
//
//  1. Hidden errors. On-die correction silently absorbs raw errors up to
//     its strength, so the controller's corrected-bit telemetry collapses
//     — and when a line's raw count finally exceeds the on-die strength,
//     it surfaces all at once, miscorrection-inflated. Reliability can
//     get *worse* than with no on-die code at all.
//  2. Profiling recovers the lost visibility. An active profiling policy
//     spends a small read budget on periodic profiling rounds, separates
//     direct from indirect error positions, and biases patrol toward the
//     at-risk minority — fewer UEs than uniform patrol at exactly equal
//     scrub-visit bandwidth.
//
// A third table sweeps the Luo-style capacity trade: running a weaker
// on-die code on the coldest lines reclaims check-bit storage. On a
// heavily aged device the weaker code is also *more* reliable — every
// overflow of a t-strong code surfaces miscorrection-inflated by t, so
// shrinking t on lines that overflow anyway trims the inflation the
// controller must absorb.
func runF22(env *environment) ([]core.Table, error) {
	// Pre-age the device into the minority-at-risk regime: the weakest
	// cells of a minority of lines are dead, so on-die overflows (and the
	// at-risk set) concentrate on an uneven population worth profiling.
	sys := env.sys
	sys.InitialLineWrites = 15_000_000
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}

	// Table 1: hidden-error regime across on-die strengths, controller
	// mechanism held fixed (BCH-8, full decode every sweep).
	mech, err := core.SuiteMechanism(sys, "strong-ecc")
	if err != nil {
		return nil, err
	}
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "VIOLATED"
	}
	strengths := []int{0, 1, 2, 4}
	if env.quick {
		strengths = []int{0, 1, 2}
	}
	hidT := core.Table{
		Title:  "Hidden-error regime (strong-ecc controller, on-die strength sweep)",
		Header: []string{"on-die t", "UEs", "controller corrected", "hidden corrected", "overflows"},
	}
	// Note: controller-visible corrected bits are NOT monotone in t. A
	// weak on-die code both hides sub-strength errors and inflates every
	// overflow by its worst-case miscorrection penalty (raw+t), so t=1 can
	// report *more* visible bits than no on-die code at all. The verdict
	// below therefore checks the strongest code in the sweep, where hiding
	// dominates inflation.
	var plainCorrected, lastCorrected, lastHidden int64
	for _, t := range strengths {
		osys := sys
		if t > 0 {
			osys.OnDie = &ondie.Config{T: t}
		}
		res, err := env.runOne(osys, mech, w)
		if err != nil {
			return nil, err
		}
		if t == 0 {
			plainCorrected = res.CorrectedBits
		}
		lastCorrected, lastHidden = res.CorrectedBits, res.OnDieCorrectedBits
		hidT.AddRow(fmt.Sprintf("%d", t),
			fmt.Sprintf("%d", res.UEs),
			fmt.Sprintf("%d", res.CorrectedBits),
			fmt.Sprintf("%d", res.OnDieCorrectedBits),
			fmt.Sprintf("%d", res.OnDieOverflows))
	}
	hidT.AddRow("errors hidden at max t",
		fmt.Sprintf("%d < %d visible", lastCorrected, plainCorrected),
		verdict(lastHidden > 0 && lastCorrected < plainCorrected), "", "")

	// Table 2: profiled vs uniform patrol at equal scrub bandwidth. Both
	// policies are full-decode with write-threshold 1 on the same fixed
	// interval; the profiled one additionally runs profiling rounds and
	// redirects a fraction of visits toward its at-risk set.
	// The comparison needs UE risk concentrated on the at-risk minority:
	// a BCH-4 controller leaves stuck-bit lines only a couple of drift
	// errors from uncorrectable while clean lines keep real margin, so
	// patrol bandwidth spent on the at-risk set pays. (Under BCH-8 every
	// line has so much margin that redirecting visits costs more than it
	// saves.) The interval is tight enough for the profiling cadence (one
	// round every 4 sweeps) to build and exploit its at-risk set.
	bch4, err := ecc.NewBCHLine(4)
	if err != nil {
		return nil, err
	}
	osys := sys
	osys.OnDie = &ondie.Config{T: 1}
	uniform := mech
	uniform.Scheme = bch4
	uniform.Policy, err = scrub.ByName("threshold-1")
	if err != nil {
		return nil, err
	}
	uniform.Name = "uniform"
	uniform.Interval = osys.Horizon / 32
	profiled := uniform
	profiled.Policy = scrub.ProfiledThreshold(1)
	profiled.Name = "profiled"

	profT := core.Table{
		Title:  "Profiled vs uniform patrol (BCH-4 controller, on-die t=1, equal scrub bandwidth)",
		Header: []string{"policy", "UEs", "visits", "profile rounds", "profile reads", "at-risk lines", "redirected visits"},
	}
	uRes, err := env.runOne(osys, uniform, w)
	if err != nil {
		return nil, err
	}
	pRes, err := env.runOne(osys, profiled, w)
	if err != nil {
		return nil, err
	}
	for _, r := range []struct {
		name string
		res  *sim.Result
	}{{"uniform", uRes}, {"profiled", pRes}} {
		profT.AddRow(r.name,
			fmt.Sprintf("%d", r.res.UEs),
			fmt.Sprintf("%d", r.res.ScrubVisits),
			fmt.Sprintf("%d", r.res.ProfileRounds),
			fmt.Sprintf("%d", r.res.ProfileReads),
			fmt.Sprintf("%d", r.res.AtRiskLines),
			fmt.Sprintf("%d", r.res.AtRiskVisits))
	}
	profT.AddRow("equal bandwidth", fmt.Sprintf("%d vs %d visits", pRes.ScrubVisits, uRes.ScrubVisits),
		verdict(pRes.ScrubVisits == uRes.ScrubVisits), "", "", "", "")
	profT.AddRow("profiled wins", fmt.Sprintf("%d < %d UEs", pRes.UEs, uRes.UEs),
		verdict(pRes.UEs < uRes.UEs), "", "", "", "")

	// Table 3: Luo-style capacity trade — the coldest fraction of lines
	// runs a t=1 code under a t=4 baseline. Check bits reclaimed scale
	// with the fraction; UEs *fall* with it on this aged device because
	// the weak code's overflows surface with a quarter of the strong
	// code's miscorrection inflation.
	fracs := []float64{0, 0.25, 0.5, 0.75}
	if env.quick {
		fracs = []float64{0, 0.5}
	}
	luoT := core.Table{
		Title:  "Workload-aware on-die capacity trade (t=4 base, t=1 on coldest lines)",
		Header: []string{"weak fraction", "UEs", "weak lines", "check bits saved", "hidden corrected"},
	}
	for _, f := range fracs {
		lsys := sys
		cfg := &ondie.Config{T: 4}
		if f > 0 {
			cfg.WeakT = 1
			cfg.WeakFraction = f
		}
		lsys.OnDie = cfg
		res, err := env.runOne(lsys, mech, w)
		if err != nil {
			return nil, err
		}
		luoT.AddRow(fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%d", res.UEs),
			fmt.Sprintf("%d", res.OnDieWeakLines),
			fmt.Sprintf("%d", res.OnDieCheckBitsSaved),
			fmt.Sprintf("%d", res.OnDieCorrectedBits))
	}

	return []core.Table{hidT, profT, luoT}, nil
}
