package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

func init() {
	register(experiment{ID: "F21", Title: "Fault-injection sensitivity (controller robustness)", Run: runF21})
}

// runF21 stresses the scrub mechanisms with the in-model fault plan: an
// imperfect controller whose scrub reads flip bits, whose sweeps get cut
// short, and whose light-detect probes alias to clean. Two properties
// make the paper's comparison trustworthy under these faults:
//
//  1. UEs rise monotonically with each fault rate — the model degrades
//     smoothly rather than falling off a cliff, so small calibration
//     errors in the fault-free runs cannot flip conclusions.
//  2. At zero fault rate the light-detect mechanism still does strictly
//     fewer ECC decodes than full decode at matched reliability — the
//     paper's core trade survives the machinery added for injection.
func runF21(env *environment) ([]core.Table, error) {
	sys := env.sys
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	mechNames := []string{"strong-ecc", "light-detect"}
	readRates := []float64{0, 0.02, 0.1, 0.3}
	skipRates := []float64{0, 0.25, 0.5}
	if env.quick {
		readRates = []float64{0, 0.1, 0.3}
		skipRates = []float64{0, 0.5}
	}

	// Table 1: scrub-read corruption sweep. Phantom bursts up to 12 bits
	// exceed BCH-8's capability, so a faulty read can manufacture a UE.
	readT := core.Table{
		Title:  "Scrub-read fault sweep (phantom flips up to 12 bits/read)",
		Header: []string{"mechanism", "flip rate", "UEs", "induced UEs", "faulty reads", "decodes"},
	}
	type cell struct {
		ues     int64
		decodes int64
	}
	zeroRate := map[string]cell{}
	for _, name := range mechNames {
		m, err := core.SuiteMechanism(sys, name)
		if err != nil {
			return nil, err
		}
		prevUEs := int64(-1)
		monotone := true
		for _, rate := range readRates {
			fsys := sys
			if rate > 0 {
				fsys.Fault = &fault.Plan{ReadFlipRate: rate, ReadFlipMaxBits: 12}
			}
			res, err := env.runOne(fsys, m, w)
			if err != nil {
				return nil, err
			}
			if rate == 0 {
				zeroRate[name] = cell{ues: res.UEs, decodes: res.ScrubDecodes}
			}
			if res.UEs < prevUEs {
				monotone = false
			}
			prevUEs = res.UEs
			readT.AddRow(name, fmt.Sprintf("%.2f", rate),
				fmt.Sprintf("%d", res.UEs),
				fmt.Sprintf("%d", res.Faults.InducedUEs),
				fmt.Sprintf("%d", res.Faults.ReadFaultVisits),
				fmt.Sprintf("%d", res.ScrubDecodes))
		}
		if !monotone {
			readT.AddRow(name, "⚠", "UEs not monotone in fault rate", "", "", "")
		}
	}

	// Ordering check at zero faults: the injection plumbing must not cost
	// light-detect its decode advantage.
	ordT := core.Table{
		Title:  "Fault-free ordering check (injection plumbing is inert)",
		Header: []string{"property", "value", "verdict"},
	}
	fullDec := zeroRate["strong-ecc"].decodes
	lightDec := zeroRate["light-detect"].decodes
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "VIOLATED"
	}
	ordT.AddRow("light-detect decodes < full-decode decodes",
		fmt.Sprintf("%d < %d", lightDec, fullDec), verdict(lightDec < fullDec))
	ordT.AddRow("light-detect UEs == full-decode UEs",
		fmt.Sprintf("%d vs %d", zeroRate["light-detect"].ues, zeroRate["strong-ecc"].ues),
		verdict(zeroRate["light-detect"].ues == zeroRate["strong-ecc"].ues))

	// Table 2: interrupted-sweep sweep on the combined mechanism — the
	// adaptive controller must absorb lost coverage by shrinking the
	// interval, not by silently dropping reliability.
	skipT := core.Table{
		Title:  "Interrupted-sweep sweep (combined mechanism)",
		Header: []string{"skip rate", "UEs", "sweeps cut", "lines skipped", "visits", "final interval"},
	}
	comb, err := core.SuiteMechanism(sys, "combined")
	if err != nil {
		return nil, err
	}
	for _, rate := range skipRates {
		fsys := sys
		if rate > 0 {
			fsys.Fault = &fault.Plan{SweepSkipRate: rate}
		}
		res, err := env.runOne(fsys, comb, w)
		if err != nil {
			return nil, err
		}
		skipT.AddRow(fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%d", res.UEs),
			fmt.Sprintf("%d", res.Faults.SweepsInterrupted),
			fmt.Sprintf("%d", res.Faults.LinesSkipped),
			fmt.Sprintf("%d", res.ScrubVisits),
			fmt.Sprintf("%.0fs", res.FinalInterval))
	}

	return []core.Table{readT, ordT, skipT}, nil
}
