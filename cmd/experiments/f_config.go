package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcm"
)

func init() {
	register(experiment{
		ID:    "T1",
		Title: "System configuration",
		Run:   runT1,
	})
}

func runT1(env *environment) ([]core.Table, error) {
	sys := env.sys
	cfg := core.Table{Title: "Simulated system", Header: []string{"parameter", "value"}}
	g := sys.Geometry
	cfg.AddRow("region", fmt.Sprintf("%d lines x %d B (%d KiB data)",
		g.TotalLines(), g.LineBytes, g.TotalBytes()/1024))
	cfg.AddRow("organisation", fmt.Sprintf("%d ch x %d rank x %d bank x %d row x %d lines",
		g.Channels, g.RanksPerChan, g.BanksPerRank, g.RowsPerBank, g.LinesPerRow))
	cfg.AddRow("cell", fmt.Sprintf("2-bit MLC, %d cells/line, Gray-coded", pcm.CellsPerLine))
	cfg.AddRow("level means (log10 ohm)", fmt.Sprintf("%.1f / %.1f / %.1f / %.1f",
		sys.PCM.LevelMeans[0], sys.PCM.LevelMeans[1], sys.PCM.LevelMeans[2], sys.PCM.LevelMeans[3]))
	cfg.AddRow("programming sigma", fmt.Sprintf("%.3f decades", sys.PCM.SigmaProg))
	cfg.AddRow("drift exponents (mean)", fmt.Sprintf("%.3f / %.3f / %.3f / %.3f",
		sys.PCM.NuMean[0], sys.PCM.NuMean[1], sys.PCM.NuMean[2], sys.PCM.NuMean[3]))
	cfg.AddRow("drift exponent spread", fmt.Sprintf("%.0f%% of mean", 100*sys.PCM.NuSigma[2]/sys.PCM.NuMean[2]))
	cfg.AddRow("endurance", fmt.Sprintf("10^%.1f writes median, %.2f decades sigma",
		sys.Wear.MeanLog10Writes, sys.Wear.SigmaLog10))
	cfg.AddRow("read / write energy", fmt.Sprintf("%.1f / %.1f pJ per bit",
		sys.Energy.ArrayReadPJPerBit, sys.Energy.ArrayWritePJPerBit))
	cfg.AddRow("read / write latency", fmt.Sprintf("%.0f ns / %.0f ns",
		sys.Timing.ReadLatencyNs, sys.Timing.WriteLatencyNs))
	cfg.AddRow("horizon", core.FmtSeconds(sys.Horizon))
	cfg.AddRow("risk target", fmt.Sprintf("%g per line-sweep", sys.RiskTarget))

	mechs, err := core.Suite(sys)
	if err != nil {
		return nil, err
	}
	ladder := core.Table{Title: "Mechanism ladder", Header: []string{"mechanism", "ECC", "check", "write-back rule", "interval"}}
	for _, m := range mechs {
		ladder.AddRow(m.Name, m.Scheme.Name(), m.Policy.Detection().String(),
			m.Policy.Name(), core.FmtSeconds(m.Interval))
	}
	return []core.Table{cfg, ladder}, nil
}
