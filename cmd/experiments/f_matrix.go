package main

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(experiment{ID: "F3", Title: "Scrub-related writes per mechanism and workload", Run: runF3})
	register(experiment{ID: "F4", Title: "Uncorrectable errors per mechanism and workload", Run: runF4})
	register(experiment{ID: "F5", Title: "Scrub energy per mechanism and workload", Run: runF5})
	register(experiment{ID: "F8", Title: "Combined-mechanism detail per workload", Run: runF8})
}

func runF3(env *environment) ([]core.Table, error) {
	b, err := env.sharedMatrix()
	if err != nil {
		return nil, err
	}
	t := perWorkloadTable("Scrub writes (write-backs + UE repairs)", b,
		func(m, w string) string { return core.FmtCount(b.mx.Get(m, w).ScrubWrites()) },
		func(m string) string { return core.FmtCount(b.mx.TotalsFor(m).ScrubWrites) },
	)
	base := b.mx.TotalsFor("basic").ScrubWrites
	rel := core.Table{Title: "Scrub-write reduction vs basic", Header: []string{"mechanism", "factor"}}
	for _, m := range b.mx.Mechanisms {
		sw := b.mx.TotalsFor(m).ScrubWrites
		if sw == 0 {
			rel.AddRow(m, "inf")
			continue
		}
		rel.AddRow(m, fmt.Sprintf("%.1fx", float64(base)/float64(sw)))
	}
	return []core.Table{t, rel}, nil
}

func runF4(env *environment) ([]core.Table, error) {
	b, err := env.sharedMatrix()
	if err != nil {
		return nil, err
	}
	t := perWorkloadTable("Uncorrectable errors", b,
		func(m, w string) string { return core.FmtCount(b.mx.Get(m, w).UEs) },
		func(m string) string { return core.FmtCount(b.mx.TotalsFor(m).UEs) },
	)
	hl, err := headlineTable(b)
	if err != nil {
		return nil, err
	}
	return []core.Table{t, hl}, nil
}

func runF5(env *environment) ([]core.Table, error) {
	b, err := env.sharedMatrix()
	if err != nil {
		return nil, err
	}
	t := perWorkloadTable("Scrub energy", b,
		func(m, w string) string { return core.FmtEnergy(b.mx.Get(m, w).ScrubEnergy.Total()) },
		func(m string) string { return core.FmtEnergy(b.mx.TotalsFor(m).ScrubEnergy) },
	)
	// Component breakdown aggregated over workloads.
	bd := core.Table{Title: "Scrub energy breakdown (totals across workloads)",
		Header: []string{"mechanism", "reads", "decode", "detect", "writes", "total"}}
	for _, m := range b.mx.Mechanisms {
		var reads, dec, det, wr float64
		for _, w := range b.mx.Workloads {
			r := b.mx.Get(m, w)
			reads += r.ScrubEnergy.ReadPJ
			dec += r.ScrubEnergy.DecodePJ
			det += r.ScrubEnergy.DetectPJ
			wr += r.ScrubEnergy.WritePJ
		}
		bd.AddRow(m, core.FmtEnergy(reads), core.FmtEnergy(dec), core.FmtEnergy(det),
			core.FmtEnergy(wr), core.FmtEnergy(reads+dec+det+wr))
	}
	return []core.Table{t, bd}, nil
}

func runF8(env *environment) ([]core.Table, error) {
	b, err := env.sharedMatrix()
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Combined mechanism per workload",
		Header: []string{"workload", "UEs", "scrub writes", "energy", "final interval", "demand writes"}}
	for _, w := range b.mx.Workloads {
		r := b.mx.Get("combined", w)
		t.AddRow(w, core.FmtCount(r.UEs), core.FmtCount(r.ScrubWrites()),
			core.FmtEnergy(r.ScrubEnergy.Total()), core.FmtSeconds(r.FinalInterval),
			core.FmtCount(r.DemandWrites))
	}
	// Per-workload headline: the win should be largest on cold workloads.
	perW := core.Table{Title: "Per-workload reduction (basic -> combined)",
		Header: []string{"workload", "UE reduction", "write factor", "energy reduction"}}
	for _, w := range b.mx.Workloads {
		ba, cm := b.mx.Get("basic", w), b.mx.Get("combined", w)
		ue := "n/a"
		if ba.UEs > 0 {
			ue = fmt.Sprintf("%.1f%%", 100*(1-float64(cm.UEs)/float64(ba.UEs)))
		}
		wf := "inf"
		if cm.ScrubWrites() > 0 {
			wf = fmt.Sprintf("%.1fx", float64(ba.ScrubWrites())/float64(cm.ScrubWrites()))
		}
		en := fmt.Sprintf("%.1f%%", 100*(1-cm.ScrubEnergy.Total()/ba.ScrubEnergy.Total()))
		perW.AddRow(w, ue, wf, en)
	}
	return []core.Table{t, perW}, nil
}
