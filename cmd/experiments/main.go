// Command experiments regenerates every table and figure of the
// reproduction (see DESIGN.md for the experiment index). Each experiment
// prints one or more tables; -md switches to markdown for pasting into
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -quick          # reduced scale (CI-sized)
//	experiments -run F4         # one experiment
//	experiments -md > out.md    # markdown output
//	experiments -json > out.json # machine-readable output
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// experiment is one reproducible table/figure generator.
type experiment struct {
	ID    string
	Title string
	Run   func(env *environment) ([]core.Table, error)
}

// environment carries shared scale settings and memoised results.
type environment struct {
	quick bool
	sys   core.System
	// ctx bounds every experiment's simulations; it carries the -timeout
	// deadline when one is set.
	ctx context.Context
	// matrixCache holds the big mechanisms × workloads run shared by
	// F3/F4/F5/F8/F11.
	matrix *matrixBundle
}

var registry []experiment

func register(e experiment) { registry = append(registry, e) }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick   = flag.Bool("quick", false, "reduced scale for fast runs")
		only    = flag.String("run", "", "run a single experiment (e.g. F4)")
		md      = flag.Bool("md", false, "emit markdown tables")
		jsonOut = flag.Bool("json", false, "emit one JSON document with all tables")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	)
	flag.Parse()

	sort.Slice(registry, func(i, j int) bool { return registryOrder(registry[i].ID) < registryOrder(registry[j].ID) })

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	env := &environment{quick: *quick, sys: core.DefaultSystem(), ctx: ctx}
	if *quick {
		env.sys.Geometry.RowsPerBank = 16 // 4096 lines
		env.sys.Horizon = 43200           // half a day
	}

	out := io.Writer(os.Stdout)
	type jsonExperiment struct {
		ID      string       `json:"id"`
		Title   string       `json:"title"`
		Seconds float64      `json:"seconds"`
		Tables  []core.Table `json:"tables"`
	}
	var jsonDoc []jsonExperiment
	matched := false
	for _, e := range registry {
		if *only != "" && !strings.EqualFold(*only, e.ID) {
			continue
		}
		matched = true
		start := time.Now()
		if !*jsonOut {
			fmt.Fprintf(out, "==== %s: %s ====\n", e.ID, e.Title)
		}
		tables, err := e.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonOut {
			jsonDoc = append(jsonDoc, jsonExperiment{
				ID: e.ID, Title: e.Title,
				Seconds: time.Since(start).Seconds(), Tables: tables,
			})
			continue
		}
		for i := range tables {
			var renderErr error
			if *md {
				renderErr = tables[i].Markdown(out)
			} else {
				renderErr = tables[i].Render(out)
			}
			if renderErr != nil {
				return renderErr
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if *only != "" && !matched {
		return fmt.Errorf("unknown experiment %q (T1, F1..F22)", *only)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonDoc)
	}
	return nil
}

// registryOrder sorts T1 first, then F1..F12 numerically.
func registryOrder(id string) int {
	if strings.HasPrefix(id, "T") {
		return 0
	}
	var n int
	fmt.Sscanf(id, "F%d", &n)
	return n
}
