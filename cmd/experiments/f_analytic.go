package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/trace"
	"repro/internal/wear"
)

func init() {
	register(experiment{ID: "F9", Title: "Scrub bandwidth and performance overhead vs interval", Run: runF9})
	register(experiment{ID: "F10", Title: "Drift-parameter sensitivity of the comparison", Run: runF10})
	register(experiment{ID: "F11", Title: "Endurance lifetime impact per mechanism", Run: runF11})
}

// runF9 evaluates the queueing model across candidate scrub intervals
// under db-oltp demand rates, at fleet scale (32 GiB of lines).
func runF9(env *environment) ([]core.Table, error) {
	sys := env.sys
	model, err := memctrl.NewModel(sys.Timing)
	if err != nil {
		return nil, err
	}
	w, err := trace.ByName("db-oltp")
	if err != nil {
		return nil, err
	}
	// Fleet scale: 32 GiB / 64 B lines, with banks scaled in proportion
	// (32 channels x 8 banks).
	const fleetLines = 32 << 30 / 64
	timing := sys.Timing
	timing.Banks = 256
	fleet, err := memctrl.NewModel(timing)
	if err != nil {
		return nil, err
	}
	_ = model
	footprint := w.FootprintFrac * float64(fleetLines)
	demandR := w.ReadsPerLinePerSec * footprint
	demandW := w.WritesPerLinePerSec * footprint
	t := core.Table{Title: "Scrub overhead vs interval (32 GiB, db-oltp demand)",
		Header: []string{"interval", "scrub reads/s", "scrub BW", "utilization", "slowdown"}}
	for _, interval := range []float64{60, 300, 900, 3600, 14400, 86400} {
		sr := memctrl.ScrubReadRate(fleetLines, interval)
		rates := memctrl.Rates{
			DemandReads: demandR, DemandWrites: demandW,
			ScrubReads: sr, ScrubWrites: sr * 0.03, // ~3% of visits write back
		}
		slow := fleet.Slowdown(rates)
		slowStr := fmt.Sprintf("%.4fx", slow)
		if math.IsInf(slow, 1) {
			slowStr = "saturated"
		}
		t.AddRow(core.FmtSeconds(interval),
			fmt.Sprintf("%.0f", sr),
			fmt.Sprintf("%.1f MB/s", fleet.BandwidthMBps(sr)),
			fmt.Sprintf("%.3f", fleet.Utilization(rates)),
			slowStr)
	}
	// Feasibility: shortest interval within a 10% utilisation budget.
	minIv := fleet.MinScrubInterval(fleetLines, demandR, demandW, 0.03, 0.10)
	fb := core.Table{Title: "Feasibility bound", Header: []string{"constraint", "value"}}
	fb.AddRow("min interval at 10% bank-utilisation budget", core.FmtSeconds(minIv))
	return []core.Table{t, fb}, nil
}

// runF10 re-runs basic vs combined with the drift-exponent spread scaled,
// asking whether the proposal's win survives optimistic and pessimistic
// device assumptions.
func runF10(env *environment) ([]core.Table, error) {
	w, err := trace.ByName("idle-archive")
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Sensitivity to drift-exponent spread (idle-archive)",
		Header: []string{"sigma_nu scale", "basic UEs", "combined UEs", "UE reduction", "write factor", "energy reduction"}}
	for _, scale := range []float64{0.5, 1.0, 1.5, 2.0} {
		sys := env.sys
		for i := range sys.PCM.NuSigma {
			sys.PCM.NuSigma[i] *= scale
		}
		mechs, err := core.Suite(sys)
		if err != nil {
			return nil, err
		}
		var basic, combined core.Mechanism
		for _, m := range mechs {
			switch m.Name {
			case "basic":
				basic = m
			case "combined":
				combined = m
			}
		}
		rB, err := env.runOne(sys, basic, w)
		if err != nil {
			return nil, err
		}
		rC, err := env.runOne(sys, combined, w)
		if err != nil {
			return nil, err
		}
		ue := "n/a"
		if rB.UEs > 0 {
			ue = fmt.Sprintf("%.1f%%", 100*(1-float64(rC.UEs)/float64(rB.UEs)))
		}
		wf := "inf"
		if rC.ScrubWrites() > 0 {
			wf = fmt.Sprintf("%.1fx", float64(rB.ScrubWrites())/float64(rC.ScrubWrites()))
		}
		en := fmt.Sprintf("%.1f%%", 100*(1-rC.ScrubEnergy.Total()/rB.ScrubEnergy.Total()))
		t.AddRow(fmt.Sprintf("%.1fx", scale), core.FmtCount(rB.UEs), core.FmtCount(rC.UEs), ue, wf, en)
	}
	return []core.Table{t}, nil
}

// runF11 converts each mechanism's measured write rate into device
// lifetime: with the endurance model, how many years until the average
// line's hard errors alone exhaust the ECC budget.
func runF11(env *environment) ([]core.Table, error) {
	b, err := env.sharedMatrix()
	if err != nil {
		return nil, err
	}
	wm, err := wear.NewModel(env.sys.Wear)
	if err != nil {
		return nil, err
	}
	t := core.Table{Title: "Lifetime until hard errors exhaust ECC (stream-write workload)",
		Header: []string{"mechanism", "writes/line/day", "ECC budget", "lifetime"}}
	for _, m := range b.mx.Mechanisms {
		r := b.mx.Get(m, "stream-write")
		days := r.SimSeconds / 86400
		writesPerLineDay := float64(r.TotalLineWrites) / float64(r.Lines) / days
		budget := 1
		if r.SchemeName != "SECDED" {
			// Allow hard errors to consume half the BCH budget.
			budget = 4
		}
		lifeWrites := wm.LifetimeWrites(budget)
		years := lifeWrites / writesPerLineDay / 365
		t.AddRow(m, fmt.Sprintf("%.1f", writesPerLineDay),
			fmt.Sprintf("%d cells", budget),
			fmt.Sprintf("%.1f years", years))
	}
	return []core.Table{t}, nil
}
