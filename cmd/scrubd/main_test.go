package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// syncBuffer is a goroutine-safe log sink for the daemon's output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeBootSubmitDrain boots the daemon in-process on an ephemeral
// port, submits a tiny job, waits for it to complete, and then drains
// via context cancellation — the same loop `make smoke-serve` runs from
// the shell, but under `go test -race`.
func TestServeBootSubmitDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	var log syncBuffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, options{
			addr:    "127.0.0.1:0",
			service: service.Config{QueueCapacity: 4, Workers: 1, CacheCapacity: 4},
			drain:   10 * time.Second,
			onReady: func(addr string) { ready <- addr },
			out:     &log,
		})
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-serveErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	if !strings.Contains(log.String(), "scrubd: listening on") {
		t.Errorf("missing listening line in log: %q", log.String())
	}

	spec := `{"mechanism":"basic","workload":"db-oltp","horizon_sec":20000,` +
		`"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,` +
		`"rows_per_bank":8,"lines_per_row":8,"line_bytes":64}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submission: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	state := sub.State
	for state != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", state)
		}
		if state == "failed" || state == "cancelled" {
			t.Fatalf("job ended in state %q", state)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, sub.ID))
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var view struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
		r.Body.Close()
		state = view.State
	}

	// Drain: cancelling the context stands in for SIGTERM.
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned error on drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	for _, want := range []string{"scrubd: draining", "scrubd: stopped"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("log missing %q:\n%s", want, log.String())
		}
	}
}

// bootNode starts one scrubd role in-process and returns its base URL.
func bootNode(t *testing.T, ctx context.Context, opts options) string {
	t.Helper()
	ready := make(chan string, 1)
	opts.addr = "127.0.0.1:0"
	opts.drain = 10 * time.Second
	opts.onReady = func(addr string) { ready <- addr }
	if opts.out == nil {
		opts.out = io.Discard
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(ctx, opts) }()
	select {
	case addr := <-ready:
		return "http://" + addr
	case err := <-serveErr:
		t.Fatalf("%s node exited before ready: %v", opts.role, err)
	case <-time.After(10 * time.Second):
		t.Fatalf("%s node never became ready", opts.role)
	}
	return ""
}

// TestServeClusterRoles boots a coordinator and two workers in-process,
// waits for both workers to register, submits a replicated job, and
// checks it completes with the sharded path reflected in /healthz and
// /metrics.
func TestServeClusterRoles(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	coord := bootNode(t, ctx, options{
		role:      roleCoordinator,
		service:   service.Config{QueueCapacity: 4, Workers: 1, CacheCapacity: 4},
		heartbeat: 200 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		bootNode(t, ctx, options{
			role:      roleWorker,
			join:      coord,
			service:   service.Config{QueueCapacity: 4, Workers: 1, CacheCapacity: 4},
			heartbeat: 200 * time.Millisecond,
		})
	}

	// Wait for both workers' join loops to land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Role        string `json:"role"`
			LiveWorkers *int   `json:"live_workers"`
		}
		r, err := http.Get(coord + "/healthz")
		if err != nil {
			t.Fatalf("GET healthz: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
		r.Body.Close()
		if health.Role != roleCoordinator {
			t.Fatalf("coordinator healthz role = %q", health.Role)
		}
		if health.LiveWorkers != nil && *health.LiveWorkers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never joined; healthz = %+v", health)
		}
		time.Sleep(50 * time.Millisecond)
	}

	spec := `{"mechanism":"basic","workload":"db-oltp","horizon_sec":20000,"replicas":8,` +
		`"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,` +
		`"rows_per_bank":8,"lines_per_row":8,"line_bytes":64}}`
	resp, err := http.Post(coord+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submission: %v", err)
	}
	resp.Body.Close()

	deadline = time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(coord + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var view struct {
			State       string `json:"state"`
			ShardsTotal int    `json:"shards_total"`
			Result      *struct {
				Replicas struct {
					Completed int `json:"completed"`
				} `json:"replicas"`
			} `json:"result"`
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
		r.Body.Close()
		if view.State == "done" {
			if view.Result == nil || view.Result.Replicas.Completed != 8 {
				t.Fatalf("done without 8 completed replicas: %+v", view)
			}
			if view.ShardsTotal == 0 {
				t.Errorf("job never reported shard progress: %+v", view)
			}
			break
		}
		if view.State == "failed" || view.State == "cancelled" {
			t.Fatalf("job ended in state %q", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", view.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	m, err := http.Get(coord + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	raw, _ := io.ReadAll(m.Body)
	m.Body.Close()
	for _, want := range []string{"scrubd_cluster_workers_alive 2", "scrubd_cluster_jobs_sharded_total 1"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("coordinator metrics missing %q:\n%s", want, raw)
		}
	}
}

// TestServeRejectsBadRole pins role validation.
func TestServeRejectsBadRole(t *testing.T) {
	if err := serve(context.Background(), options{role: "replica", out: io.Discard}); err == nil {
		t.Fatal("unknown role accepted")
	}
	if err := serve(context.Background(), options{role: roleWorker, out: io.Discard}); err == nil {
		t.Fatal("worker without -join accepted")
	}
}

// TestServeBadAddr pins that an unusable listen address surfaces as an
// error instead of a hung daemon.
func TestServeBadAddr(t *testing.T) {
	err := serve(context.Background(), options{
		addr:  "127.0.0.1:-1",
		drain: time.Second,
		out:   io.Discard,
	})
	if err == nil {
		t.Fatal("serve on invalid address: want error, got nil")
	}
}
