// Command scrubd serves scrub-mechanism simulations as a long-running
// daemon: jobs are submitted over HTTP/JSON, executed by a worker pool
// through the resilient replication runner, deduplicated in flight, and
// cached by content address so an identical spec is answered without
// re-simulation.
//
// Usage:
//
//	scrubd [-addr host:port] [-queue N] [-workers N] [-cache N] [-drain D]
//	       [-role standalone|coordinator|worker] [-join URL] [-advertise URL]
//	       [-heartbeat D] [-shard-inflight N] [-journal-dir DIR] [-worker-ttl D]
//	       [-steal-interval D] [-gossip-interval D] [-speculate-factor F]
//	       [-speculate-after D] [-no-speculation] [-fleet] [-max-body-bytes N]
//	       [-max-batch-specs N] [-tenant-rate R] [-tenant-burst N] [-aging D] [-shed-batch-pct F]
//	       [-shed-normal-pct F] [-shed-interactive-pct F] [-shed-off] [-version]
//
// Endpoints:
//
//	POST   /v1/jobs               submit a job spec
//	POST   /v1/jobs/batch         submit many specs in one group commit
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status and result
//	DELETE /v1/jobs/{id}          cancel a job
//	GET    /healthz               liveness (role, uptime, build, cluster state)
//	GET    /metrics               Prometheus text metrics
//	GET    /v1/cache/index        cached result fingerprints (gossip)
//	GET    /v1/cache/results/{fp} cached result bytes (gossip)
//	POST   /v1/cluster/join       (coordinator) worker registration
//	GET    /v1/cluster/workers    (coordinator) membership listing
//	GET    /v1/cluster/ring       (coordinator) placement ring
//	POST   /v1/cluster/steal      (coordinator) hand out a pending shard
//	POST   /v1/cluster/claims     (coordinator) accept a stolen result
//	POST   /v1/cluster/shards     (worker) execute a replica range
//	*      /v1/fleet/...          (-fleet) the fleet scrub-control plane
//
// With -fleet the daemon runs the fleet scrub-control plane: long-lived
// simulated devices registered under /v1/fleet/devices, each patrolled by
// a background scrub session that is live-reconfigurable (PATCH .../patrol),
// preemptible by on-demand region scrubs (POST .../scrubs), and monitored
// by an error-statistics store that fires simulated Post-Package-Repair
// when a line's correctable-error rate crosses its threshold. With
// -journal-dir, device registrations and patrol reconfigurations are
// journaled and recovered across restarts.
//
// Roles: a standalone node executes jobs itself; a coordinator places
// each job's replica shards on joined workers by consistent hashing
// (falling back to local execution when none are live), heartbeats
// their /healthz, gossips the fleet's result-cache indexes, and
// speculatively re-dispatches stragglers; a worker joins a coordinator
// with -join, executes pushed shards bounded by -shard-inflight, and
// steals queued shards whenever it has a free slot. Every role serves
// the ordinary jobs API and the cache-gossip endpoints.
//
// With -journal-dir the daemon keeps a write-ahead job journal there:
// every accepted job is durable before it is acknowledged, and on
// restart the journal is replayed — finished jobs are restored (their
// results re-seed the cache) and interrupted jobs are re-enqueued,
// resuming a sharded campaign from its last completed shard checkpoint.
//
// Admission control: job specs may carry a "priority" (interactive,
// normal, batch — default normal) and a "deadline_at" (RFC 3339); the
// queue serves strict class precedence with earliest-deadline-first
// inside a class, aged by -aging so a busy interactive stream cannot
// starve batch forever. As the queue fills the daemon walks a shedding
// ladder (healthy → shed-batch → shed-normal → interactive-only, set by
// the -shed-*-pct watermarks, -shed-off disables) and refuses work with
// 503 + Retry-After; per-tenant token buckets (-tenant-rate,
// -tenant-burst, keyed by the X-Scrubd-Tenant header) refuse with 429.
// Scheduling fields never enter the job fingerprint: an interactive
// submission still dedups against — and escalates — the same spec queued
// as batch.
//
// On SIGINT/SIGTERM the daemon stops accepting work and drains in-flight
// jobs for up to the -drain budget before force-cancelling them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrubd:", err)
		os.Exit(1)
	}
}

// Daemon roles.
const (
	roleStandalone  = "standalone"
	roleCoordinator = "coordinator"
	roleWorker      = "worker"
)

// options carries the daemon's flag-settable configuration.
type options struct {
	addr    string
	service service.Config
	drain   time.Duration

	// role selects standalone, coordinator, or worker ("" = standalone).
	role string
	// join is the coordinator base URL a worker announces itself to.
	join string
	// advertise is the worker base URL announced to the coordinator
	// ("" = http://<resolved listen address>).
	advertise string
	// heartbeat is the coordinator's worker-probe interval.
	heartbeat time.Duration
	// shardInflight bounds concurrent shards: executed per worker node,
	// dispatched per worker on a coordinator (0 = role default).
	shardInflight int
	// journalDir, when set, enables the write-ahead job journal and
	// crash recovery from it.
	journalDir string
	// fleet enables the fleet scrub-control plane under /v1/fleet/.
	fleet bool
	// maxBodyBytes caps every JSON request body (0 = 1 MiB).
	maxBodyBytes int64
	// maxBatchSpecs caps the spec count of one batch submission
	// (0 = service.DefaultMaxBatchSpecs; negative = unlimited).
	maxBatchSpecs int
	// workerTTL evicts dead workers not seen for this long (coordinator
	// role; 0 = never evict).
	workerTTL time.Duration
	// stealInterval is how often an idle worker polls the coordinator
	// for stealable shards (worker role; 0 = 1s, negative disables).
	stealInterval time.Duration
	// gossipInterval is how often the coordinator sweeps the fleet's
	// cache indexes (coordinator role; 0 = 2s, negative disables).
	gossipInterval time.Duration
	// speculateFactor and speculateAfter shape straggler re-execution
	// (coordinator role; 0 = defaults); disableSpeculation turns it off.
	speculateFactor    float64
	speculateAfter     time.Duration
	disableSpeculation bool

	// onReady, when non-nil, receives the resolved listen address (tests
	// boot on :0 and need the real port).
	onReady func(addr string)
	// out receives the daemon's log lines (os.Stdout in production).
	out io.Writer
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address (use :0 for an ephemeral port)")
		queue    = flag.Int("queue", 64, "job queue capacity")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 256, "result cache capacity (entries)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
		role     = flag.String("role", roleStandalone, "node role: standalone, coordinator, or worker")
		join     = flag.String("join", "", "coordinator URL to join (worker role)")
		adv      = flag.String("advertise", "", "base URL announced to the coordinator (worker role; default derived from -addr)")
		hb       = flag.Duration("heartbeat", 2*time.Second, "worker health-probe interval (coordinator role)")
		inflight = flag.Int("shard-inflight", 0, "concurrent shard bound (0 = role default)")
		jdir     = flag.String("journal-dir", "", "write-ahead job journal directory (empty = no journal)")
		wttl     = flag.Duration("worker-ttl", 0, "evict dead workers not seen for this long (coordinator role; 0 = never)")
		steal    = flag.Duration("steal-interval", 0, "idle-worker steal poll interval (worker role; 0 = 1s, negative = off)")
		gossip   = flag.Duration("gossip-interval", 0, "cache-index gossip sweep interval (coordinator role; 0 = 2s, negative = off)")
		specF    = flag.Float64("speculate-factor", 0, "speculate a shard past this multiple of the median shard duration (coordinator role; 0 = default)")
		specA    = flag.Duration("speculate-after", 0, "minimum shard age before speculation (coordinator role; 0 = default)")
		noSpec   = flag.Bool("no-speculation", false, "disable speculative re-execution of stragglers (coordinator role)")
		fleetOn  = flag.Bool("fleet", false, "enable the fleet scrub-control plane under /v1/fleet/")
		maxBody  = flag.Int64("max-body-bytes", 0, "JSON request body cap in bytes (0 = 1 MiB)")
		maxBatch = flag.Int("max-batch-specs", 0, "specs-per-batch cap on POST /v1/jobs/batch (0 = 256, negative = unlimited)")
		trate    = flag.Float64("tenant-rate", 0, "per-tenant submission rate limit in jobs/sec (0 = off)")
		tburst   = flag.Int("tenant-burst", 0, "per-tenant submission burst (0 = off)")
		aging    = flag.Duration("aging", 30*time.Second, "serve a lower-class job waiting at least this long ahead of higher classes (0 = strict precedence)")
		shedB    = flag.Float64("shed-batch-pct", 0, "queue occupancy fraction at which fresh batch work is shed (0 = default 0.50)")
		shedN    = flag.Float64("shed-normal-pct", 0, "queue occupancy fraction at which fresh normal work is shed (0 = default 0.75)")
		shedI    = flag.Float64("shed-interactive-pct", 0, "queue occupancy fraction past which only interactive traffic is served (0 = default 0.90)")
		shedOff  = flag.Bool("shed-off", false, "disable watermark load shedding (admit every class until the queue is full)")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("scrubd", buildinfo.Get())
		return nil
	}
	// The daemon sheds by default; -shed-off restores admit-until-full.
	var shed *service.ShedConfig
	if !*shedOff {
		cfg := service.DefaultShedConfig()
		if *shedB > 0 {
			cfg.BatchPct = *shedB
		}
		if *shedN > 0 {
			cfg.NormalPct = *shedN
		}
		if *shedI > 0 {
			cfg.InteractivePct = *shedI
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		shed = &cfg
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, options{
		addr: *addr,
		service: service.Config{
			QueueCapacity: *queue,
			Workers:       *workers,
			CacheCapacity: *cache,
			Shed:          shed,
			TenantRate:    *trate,
			TenantBurst:   *tburst,
			Aging:         *aging,
		},
		maxBodyBytes:       *maxBody,
		maxBatchSpecs:      *maxBatch,
		drain:              *drain,
		role:               *role,
		join:               *join,
		advertise:          *adv,
		heartbeat:          *hb,
		shardInflight:      *inflight,
		journalDir:         *jdir,
		fleet:              *fleetOn,
		workerTTL:          *wttl,
		stealInterval:      *steal,
		gossipInterval:     *gossip,
		speculateFactor:    *specF,
		speculateAfter:     *specA,
		disableSpeculation: *noSpec,
		out:                os.Stdout,
	})
}

// chainMetrics composes /metrics appenders; nil when there are none so
// the handler keeps its no-extra-metrics fast path.
func chainMetrics(fns []func(io.Writer) error) func(io.Writer) error {
	if len(fns) == 0 {
		return nil
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(out io.Writer) error {
		for _, fn := range fns {
			if err := fn(out); err != nil {
				return err
			}
		}
		return nil
	}
}

// serve runs the daemon until ctx is cancelled, then drains.
func serve(ctx context.Context, opts options) error {
	if opts.role == "" {
		opts.role = roleStandalone
	}
	switch opts.role {
	case roleStandalone, roleCoordinator, roleWorker:
	default:
		return fmt.Errorf("unknown role %q (want standalone, coordinator, or worker)", opts.role)
	}
	if opts.role == roleWorker && opts.join == "" {
		return errors.New("role worker requires -join <coordinator URL>")
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}

	// The journal opens (and replays) before the service exists, so
	// recovered jobs re-enqueue ahead of any new traffic.
	var (
		jn       *journal.Journal
		recovery *journal.Recovery
	)
	if opts.journalDir != "" {
		jn, recovery, err = journal.Open(opts.journalDir)
		if err != nil {
			ln.Close()
			return fmt.Errorf("open journal: %w", err)
		}
		defer jn.Close()
		if recovery.Records > 0 || recovery.Skipped > 0 {
			fmt.Fprintf(opts.out, "scrubd: journal replayed %d records (%d skipped) covering %d jobs\n",
				recovery.Records, recovery.Skipped, len(recovery.Jobs))
		}
	}

	// Cluster goroutines (heartbeats, join loop) stop with this context,
	// before the service drains.
	clusterCtx, clusterStop := context.WithCancel(ctx)
	defer clusterStop()

	svcCfg := opts.service
	svcCfg.Journal = jn
	handlerCfg := service.HandlerConfig{Role: opts.role, MaxBodyBytes: opts.maxBodyBytes, MaxBatchSpecs: opts.maxBatchSpecs}
	var extraMetrics []func(io.Writer) error
	var worker *cluster.Worker
	mux := http.NewServeMux()
	switch opts.role {
	case roleCoordinator:
		ms := cluster.NewMembershipWith(cluster.MembershipConfig{
			PerWorkerInFlight: opts.shardInflight,
			WorkerTTL:         opts.workerTTL,
		})
		coord := cluster.NewCoordinator(cluster.Config{
			Members:            ms,
			SpeculationFactor:  opts.speculateFactor,
			SpeculationMinWait: opts.speculateAfter,
			DisableSpeculation: opts.disableSpeculation,
		})
		svcCfg.Runner = coord.Runner()
		handlerCfg.LiveWorkers = ms.AliveCount
		handlerCfg.ClusterInfo = func() any { return coord.Snapshot() }
		extraMetrics = append(extraMetrics, coord.WritePrometheus)
		mux.Handle("/v1/cluster/", coord.Handler())
		go ms.HeartbeatLoop(clusterCtx, nil, opts.heartbeat)
		if opts.gossipInterval >= 0 {
			go coord.GossipLoop(clusterCtx, opts.gossipInterval)
		}
	case roleWorker:
		w := cluster.NewWorker(opts.shardInflight)
		w.MaxBodyBytes = opts.maxBodyBytes
		worker = w
		extraMetrics = append(extraMetrics, w.WritePrometheus)
		mux.Handle(cluster.ShardPath, w.ShardHandler())
	}
	if jn != nil {
		extraMetrics = append(extraMetrics, func(out io.Writer) error {
			return jn.WritePrometheus(out, recovery)
		})
	}

	// The fleet control plane mounts beside the jobs API: long-lived
	// devices, patrol sessions, and telemetry-driven repair. Its device
	// and session specs share the job journal, so a journaled fleet
	// survives restarts.
	var fm *fleet.Manager
	if opts.fleet {
		fm = fleet.NewManager(jn)
		fm.MaxBodyBytes = opts.maxBodyBytes
		if recovery != nil {
			if err := fm.Recover(recovery); err != nil {
				ln.Close()
				return fmt.Errorf("recover fleet from journal: %w", err)
			}
			if n := len(recovery.FleetDevices); n > 0 {
				fmt.Fprintf(opts.out, "scrubd: recovered %d fleet devices from journal\n", n)
			}
		}
		fm.RegisterRoutes(mux)
		extraMetrics = append(extraMetrics, fm.WritePrometheus)
	}
	handlerCfg.Build = buildinfo.Get()
	handlerCfg.ExtraMetrics = chainMetrics(extraMetrics)

	svc := service.New(svcCfg)
	if recovery != nil {
		n, err := svc.Recover(recovery)
		if err != nil {
			ln.Close()
			return fmt.Errorf("recover from journal: %w", err)
		}
		if n > 0 || len(recovery.Jobs) > 0 {
			fmt.Fprintf(opts.out, "scrubd: recovered %d jobs from journal (%d re-enqueued)\n",
				len(recovery.Jobs), n)
		}
	}
	mux.Handle("/", service.NewHandlerWith(svc, handlerCfg))

	// The resolved address line is load-bearing: smoke tests listen on :0
	// and scrape the actual port from it.
	fmt.Fprintf(opts.out, "scrubd: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(opts.out, "scrubd: role %s\n", opts.role)
	if opts.onReady != nil {
		opts.onReady(ln.Addr().String())
	}

	if opts.role == roleWorker {
		self := opts.advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(opts.out, "scrubd: "+format+"\n", args...)
		}
		go cluster.JoinLoop(clusterCtx, nil, opts.join, self, opts.heartbeat, logf)
		if opts.stealInterval >= 0 {
			go worker.StealLoop(clusterCtx, nil, opts.join, self, opts.stealInterval, logf)
		}
	}

	// Slowloris hygiene: bound how long a client may dribble headers and
	// bodies, and reap idle keep-alive connections. Write timeouts stay
	// off — a job result legitimately streams for as long as the
	// simulation runs.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(opts.out, "scrubd: draining")
	clusterStop()
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if fm != nil {
		// Patrol sessions finish their current chunk and stop; journaled
		// devices come back on the next boot.
		fm.Shutdown()
	}
	if err := svc.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(opts.out, "scrubd: stopped")
	return nil
}
