// Command scrubd serves scrub-mechanism simulations as a long-running
// daemon: jobs are submitted over HTTP/JSON, executed by a worker pool
// through the resilient replication runner, deduplicated in flight, and
// cached by content address so an identical spec is answered without
// re-simulation.
//
// Usage:
//
//	scrubd [-addr host:port] [-queue N] [-workers N] [-cache N] [-drain D]
//
// Endpoints:
//
//	POST   /v1/jobs       submit a job spec
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  job status and result
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /healthz       liveness
//	GET    /metrics       Prometheus text metrics
//
// On SIGINT/SIGTERM the daemon stops accepting work and drains in-flight
// jobs for up to the -drain budget before force-cancelling them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrubd:", err)
		os.Exit(1)
	}
}

// options carries the daemon's flag-settable configuration.
type options struct {
	addr    string
	service service.Config
	drain   time.Duration
	// onReady, when non-nil, receives the resolved listen address (tests
	// boot on :0 and need the real port).
	onReady func(addr string)
	// out receives the daemon's log lines (os.Stdout in production).
	out io.Writer
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:8344", "listen address (use :0 for an ephemeral port)")
		queue   = flag.Int("queue", 64, "job queue capacity")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 256, "result cache capacity (entries)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, options{
		addr: *addr,
		service: service.Config{
			QueueCapacity: *queue,
			Workers:       *workers,
			CacheCapacity: *cache,
		},
		drain: *drain,
		out:   os.Stdout,
	})
}

// serve runs the daemon until ctx is cancelled, then drains.
func serve(ctx context.Context, opts options) error {
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	svc := service.New(opts.service)
	// The resolved address line is load-bearing: smoke tests listen on :0
	// and scrape the actual port from it.
	fmt.Fprintf(opts.out, "scrubd: listening on http://%s\n", ln.Addr())
	if opts.onReady != nil {
		opts.onReady(ln.Addr().String())
	}

	srv := &http.Server{Handler: service.NewHandler(svc)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(opts.out, "scrubd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := svc.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(opts.out, "scrubd: stopped")
	return nil
}
