// Command scrubsim runs a single scrub-mechanism simulation and prints a
// detailed report: reliability, scrub activity, energy breakdown, wear,
// and the estimated performance overhead.
//
// Usage:
//
//	scrubsim [flags]
//
// Examples:
//
//	scrubsim -mechanism basic -workload db-oltp
//	scrubsim -mechanism combined -workload idle-archive -horizon 604800
//	scrubsim -scheme BCH-4 -policy threshold-3 -interval 7200 -workload kv-store
//	scrubsim -workload kv-store -record kv.trace          # export a trace
//	scrubsim -trace kv.trace -mechanism combined          # replay it
//	scrubsim -mechanism combined -json                    # machine-readable result
//	scrubsim -mechanism combined -trace-stages            # per-stage engine timings
//	scrubsim -submit http://127.0.0.1:8344 -replicas 8    # run remotely on scrubd
//
// With -submit the flags become a scrubd job spec: the job is POSTed to
// the daemon, polled until it finishes, and reported exactly like a
// local run (plus a replica-spread summary when -replicas > 1). Flags
// that have no job-spec equivalent (-trace, -record, -gap, -slc, -ecp,
// -trace-stages) are rejected in this mode.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/ondie"
	"repro/internal/scrub"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrubsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechName = flag.String("mechanism", "combined", "suite mechanism: basic|strong-ecc|light-detect|threshold|combined (overridden by -scheme/-policy)")
		workload = flag.String("workload", "db-oltp", "built-in workload name (see -list)")
		horizon  = flag.Float64("horizon", 0, "simulated seconds (0 = system default)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		interval = flag.Float64("interval", 0, "initial scrub interval seconds (0 = derived)")
		schemeN  = flag.String("scheme", "", "override ECC scheme: SECDED or BCH-<t>")
		policyN  = flag.String("policy", "", "override policy: basic|always|light|threshold-<k>|combined-<k>|profiled|profiled-<k>")
		aged     = flag.Uint64("aged", 0, "pre-age every line by this many writes")
		gap      = flag.Uint64("gap", 0, "enable Start-Gap wear leveling with this gap-move period (0 = off)")
		slc      = flag.Float64("slc", 0, "fraction of writes stored drift-free in SLC form (form switch)")
		ecpN     = flag.Int("ecp", 0, "error-correcting pointer entries per line (0 = off)")
		traceIn  = flag.String("trace", "", "replay demand writes from this trace file instead of the synthetic workload")
		record   = flag.String("record", "", "record the workload's event stream to this trace file and exit")
		list     = flag.Bool("list", false, "list workloads and mechanisms, then exit")
		jsonOut  = flag.Bool("json", false, "emit the run result as a single JSON object (the scrubd result encoding)")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this long (0 = no limit)")
		traceStg = flag.Bool("trace-stages", false, "record per-stage wall-clock spans of the run pipeline and print them after the report (local runs only)")
		submit   = flag.String("submit", "", "submit the run as a job to this scrubd base URL instead of simulating locally")
		replicas = flag.Int("replicas", 0, "Monte Carlo replica count for -submit jobs (0 = 1)")
		pollWait = flag.Duration("poll-timeout", 0, "give up waiting for a submitted job after this long (0 = wait forever)")

		faultRead      = flag.Float64("fault-read", 0, "per-visit probability a scrub read flips extra bits")
		faultReadBits  = flag.Int("fault-read-bits", 0, "max phantom bits per faulty read (0 = default)")
		faultSkip      = flag.Float64("fault-skip", 0, "per-sweep probability the sweep is cut short")
		faultProbeMiss = flag.Float64("fault-probe-miss", 0, "probability a dirty light probe aliases to clean")
		faultStuck     = flag.Float64("fault-stuck", 0, "per-line probability of stuck ECC check bits")
		faultStall     = flag.Float64("fault-stall", 0, "per-sweep probability of a controller stall")

		ondieT        = flag.Int("ondie-t", 0, "on-die ECC strength per 64-bit word: 1 = SECDED, 2..9 = BCH-t (0 = off)")
		ondieWeakT    = flag.Int("ondie-weak-t", 0, "weaker on-die strength for the coldest lines (Luo-style capacity trade; 0 = uniform)")
		ondieWeakFrac = flag.Float64("ondie-weak-frac", 0, "fraction of lines (coldest first) running the weaker on-die code")

		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("scrubsim", buildinfo.Get())
		return nil
	}

	if *list {
		fmt.Println("workloads: ")
		for _, n := range trace.Names() {
			fmt.Println("  ", n)
		}
		fmt.Println("mechanisms: basic strong-ecc light-detect threshold combined")
		return nil
	}

	plan := &fault.Plan{
		ReadFlipRate:    *faultRead,
		ReadFlipMaxBits: *faultReadBits,
		SweepSkipRate:   *faultSkip,
		ProbeMissRate:   *faultProbeMiss,
		StuckCheckRate:  *faultStuck,
		StallRate:       *faultStall,
	}
	// Validate before the Enabled gate: a negative rate must be rejected,
	// not silently treated as "no faults".
	if err := plan.Validate(); err != nil {
		return err
	}

	odCfg := &ondie.Config{T: *ondieT, WeakT: *ondieWeakT, WeakFraction: *ondieWeakFrac}
	if err := odCfg.Validate(); err != nil {
		return err
	}

	if *submit != "" {
		if *traceIn != "" || *record != "" || *gap != 0 || *slc != 0 || *ecpN != 0 || *traceStg {
			return fmt.Errorf("-trace, -record, -gap, -slc, -ecp and -trace-stages have no job-spec equivalent; drop them or run locally")
		}
		spec := service.Spec{
			Mechanism:   *mechName,
			Scheme:      *schemeN,
			Policy:      *policyN,
			IntervalSec: *interval,
			Workload:    *workload,
			HorizonSec:  *horizon,
			Seed:        *seed,
			Replicas:    *replicas,
			AgedWrites:  uint32(*aged),
		}
		if plan.Enabled() {
			spec.Fault = &service.FaultSpec{
				ReadFlipRate:    plan.ReadFlipRate,
				ReadFlipMaxBits: plan.ReadFlipMaxBits,
				SweepSkipRate:   plan.SweepSkipRate,
				ProbeMissRate:   plan.ProbeMissRate,
				StuckCheckRate:  plan.StuckCheckRate,
				StallRate:       plan.StallRate,
			}
		}
		if odCfg.Enabled() {
			spec.OnDie = &service.OnDieSpec{
				T:            odCfg.T,
				WeakT:        odCfg.WeakT,
				WeakFraction: odCfg.WeakFraction,
			}
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return submitAndReport(ctx, *submit, spec, *jsonOut, *pollWait)
	}
	if *replicas > 1 {
		return fmt.Errorf("-replicas needs -submit; local runs are single (use scrubd or cmd/experiments for campaigns)")
	}

	sys := core.DefaultSystem()
	sys.Seed = *seed
	if *horizon > 0 {
		sys.Horizon = *horizon
	}
	if *aged > 0 {
		sys.InitialLineWrites = uint32(*aged)
	}
	if plan.Enabled() {
		sys.Fault = plan
	}
	if odCfg.Enabled() {
		sys.OnDie = odCfg
	}

	w, err := trace.ByName(*workload)
	if err != nil {
		return err
	}

	if *record != "" {
		return recordTrace(sys, w, *record)
	}
	var source sim.TrafficSource
	if *traceIn != "" {
		source, err = loadTrace(sys, *traceIn)
		if err != nil {
			return err
		}
	}

	mech, err := core.SuiteMechanism(sys, *mechName)
	if err != nil {
		return err
	}
	if *schemeN != "" {
		s, err := ecc.ByName(*schemeN)
		if err != nil {
			return err
		}
		mech.Scheme = s
		mech.Name = *schemeN + "+" + mech.Policy.Name()
	}
	if *policyN != "" {
		p, err := parsePolicy(*policyN)
		if err != nil {
			return err
		}
		mech.Policy = p
		mech.Name = mech.Scheme.Name() + "+" + p.Name()
	}
	if *interval > 0 {
		mech.Interval = *interval
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := core.Options{
		GapMovePeriod: *gap,
		SLCFraction:   *slc,
		Source:        source,
		ECPEntries:    *ecpN,
	}
	var spans *engine.SpanRecorder
	if *traceStg {
		spans = &engine.SpanRecorder{}
		opts.Hooks = &engine.Hooks{Spans: spans}
	}
	res, err := core.RunOneWithOptionsContext(ctx, sys, mech, w, opts)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(service.NewRunMetrics(res))
	}
	if err := printReport(sys, mech, w, res, *gap > 0); err != nil {
		return err
	}
	if spans != nil {
		fmt.Println()
		if err := printStages(spans); err != nil {
			return err
		}
	}
	return nil
}

// printStages renders the engine's per-stage span timings, recorded when
// -trace-stages wires a SpanRecorder into the run's instrumentation
// hooks. Stages with zero observations (e.g. probes under a full-decode
// policy) are elided.
func printStages(rec *engine.SpanRecorder) error {
	st := core.Table{Title: "Engine stages", Header: []string{"stage", "spans", "total", "mean"}}
	for _, sp := range rec.Spans() {
		if sp.Count == 0 {
			continue
		}
		st.AddRow(sp.Stage,
			core.FmtCount(sp.Count),
			time.Duration(sp.Nanos).Round(time.Microsecond).String(),
			time.Duration(sp.MeanNanos).Round(time.Nanosecond).String())
	}
	return st.Render(os.Stdout)
}

// printReport renders the standard run report — shared by local runs and
// remote results reconstructed from a scrubd job. showGap adds the
// wear-leveler row, which only local runs can enable.
func printReport(sys core.System, mech core.Mechanism, w trace.Workload, res *sim.Result, showGap bool) error {
	fmt.Printf("mechanism  %s (scheme %s, policy %s)\n", mech.Name, mech.Scheme.Name(), mech.Policy.Name())
	fmt.Printf("workload   %s\n", w.Name)
	fmt.Printf("region     %d lines (%d KiB data), horizon %s, initial interval %s\n",
		res.Lines, int64(res.Lines)*64/1024, core.FmtSeconds(res.SimSeconds), core.FmtSeconds(mech.Interval))
	fmt.Println()

	rel := core.Table{Title: "Reliability", Header: []string{"metric", "value"}}
	rel.AddRow("uncorrectable errors", core.FmtCount(res.UEs))
	rel.AddRow("UE rate (per GB-day)", fmt.Sprintf("%.3f", res.UERatePerGBDay(64)))
	rel.AddRow("corrected bits", core.FmtCount(res.CorrectedBits))
	rel.AddRow("worst line errors", fmt.Sprintf("%d bits", res.MaxErrBits))
	if err := rel.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	act := core.Table{Title: "Scrub activity", Header: []string{"metric", "value"}}
	act.AddRow("sweeps", core.FmtCount(int64(res.Sweeps)))
	act.AddRow("visits", core.FmtCount(res.ScrubVisits))
	act.AddRow("light probes", core.FmtCount(res.ScrubProbes))
	act.AddRow("full decodes", core.FmtCount(res.ScrubDecodes))
	act.AddRow("policy write-backs", core.FmtCount(res.ScrubWriteBacks))
	act.AddRow("UE repair writes", core.FmtCount(res.RepairWrites))
	act.AddRow("final interval", core.FmtSeconds(res.FinalInterval))
	if err := act.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	en := core.Table{Title: "Scrub energy", Header: []string{"component", "energy"}}
	en.AddRow("array reads", core.FmtEnergy(res.ScrubEnergy.ReadPJ))
	en.AddRow("decode", core.FmtEnergy(res.ScrubEnergy.DecodePJ))
	en.AddRow("light detect", core.FmtEnergy(res.ScrubEnergy.DetectPJ))
	en.AddRow("write-backs", core.FmtEnergy(res.ScrubEnergy.WritePJ))
	en.AddRow("total", core.FmtEnergy(res.ScrubEnergy.Total()))
	if err := en.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	wearT := core.Table{Title: "Wear and demand", Header: []string{"metric", "value"}}
	wearT.AddRow("demand writes", core.FmtCount(res.DemandWrites))
	wearT.AddRow("total line writes", core.FmtCount(res.TotalLineWrites))
	wearT.AddRow("max slot writes", core.FmtCount(int64(res.MaxLineWrites)))
	wearT.AddRow("lines with dead cells", core.FmtCount(int64(res.LinesWithDead)))
	wearT.AddRow("dead cells", core.FmtCount(res.DeadCells))
	if showGap {
		wearT.AddRow("leveler gap moves", core.FmtCount(res.LevelerMoves))
	}
	if err := wearT.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	if sys.Fault.Enabled() && res.Faults.Any() {
		ft := core.Table{Title: "Injected faults", Header: []string{"metric", "value"}}
		ft.AddRow("faulty scrub reads", core.FmtCount(res.Faults.ReadFaultVisits))
		ft.AddRow("phantom bits", core.FmtCount(res.Faults.PhantomBits))
		ft.AddRow("sweeps interrupted", core.FmtCount(res.Faults.SweepsInterrupted))
		ft.AddRow("lines skipped", core.FmtCount(res.Faults.LinesSkipped))
		ft.AddRow("probe false-cleans", core.FmtCount(res.Faults.ProbeFalseCleans))
		ft.AddRow("stuck-check lines", core.FmtCount(res.Faults.StuckCheckLines))
		ft.AddRow("stuck-bit decodes", core.FmtCount(res.Faults.StuckDecodes))
		ft.AddRow("controller stalls", core.FmtCount(res.Faults.Stalls))
		ft.AddRow("stall time", core.FmtSeconds(res.Faults.StallSeconds))
		ft.AddRow("fault-induced UEs", core.FmtCount(res.Faults.InducedUEs))
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if res.OnDieCorrectedBits > 0 || res.OnDieOverflows > 0 || res.OnDieWeakLines > 0 || res.ProfileRounds > 0 {
		od := core.Table{Title: "On-die ECC", Header: []string{"metric", "value"}}
		od.AddRow("hidden corrected bits", core.FmtCount(res.OnDieCorrectedBits))
		od.AddRow("strength overflows", core.FmtCount(res.OnDieOverflows))
		if res.OnDieWeakLines > 0 {
			od.AddRow("weak-code lines", core.FmtCount(int64(res.OnDieWeakLines)))
			od.AddRow("check bits saved", core.FmtCount(res.OnDieCheckBitsSaved))
		}
		if res.ProfileRounds > 0 {
			od.AddRow("profiling rounds", core.FmtCount(res.ProfileRounds))
			od.AddRow("profiling reads", core.FmtCount(res.ProfileReads))
			od.AddRow("direct error bits", core.FmtCount(res.ProfileDirectBits))
			od.AddRow("indirect error bits", core.FmtCount(res.ProfileIndirectBits))
			od.AddRow("at-risk lines", core.FmtCount(int64(res.AtRiskLines)))
			od.AddRow("at-risk visits", core.FmtCount(res.AtRiskVisits))
		}
		if err := od.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if res.UEs > 0 {
		det := core.Table{Title: "UE detection", Header: []string{"metric", "value"}}
		det.AddRow("read-first UEs", core.FmtCount(res.UEsReadFirst))
		det.AddRow("mean latency", core.FmtSeconds(res.UEDetectDelay.Mean()))
		det.AddRow("max latency", core.FmtSeconds(res.UEDetectDelay.Max()))
		if err := det.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	slow, err := core.PerfOverhead(sys, w, res)
	if err != nil {
		return err
	}
	fmt.Printf("estimated demand slowdown from scrub traffic: %.4fx\n", slow)
	return nil
}

// submitAndReport runs the spec remotely: submit to scrubd, poll until
// the job finishes, and render the result like a local run.
func submitAndReport(ctx context.Context, base string, spec service.Spec, jsonOut bool, pollTimeout time.Duration) error {
	res, err := submitJob(ctx, base, spec, pollTimeout)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	// The daemon echoes the normalised spec; rebuilding it yields the
	// same system/mechanism/workload the report needs for headers and the
	// slowdown estimate.
	sys, mech, w, err := res.Spec.Build()
	if err != nil {
		return fmt.Errorf("rebuild remote spec: %w", err)
	}
	if len(res.Runs) == 0 {
		return fmt.Errorf("remote result %s carries no runs", res.Fingerprint)
	}
	fmt.Printf("remote     %s (fingerprint %.12s, %d/%d replicas", base, res.Fingerprint,
		res.Replicas.Completed, res.Replicas.Requested)
	if res.Replicas.Requested > 1 {
		fmt.Printf("; report shows replica %d", res.Runs[0].ReplicaIndex)
	}
	fmt.Println(")")
	if err := printReport(sys, mech, w, res.Runs[0].ToSimResult(), false); err != nil {
		return err
	}
	if res.Replicas.Requested > 1 {
		fmt.Println()
		sp := core.Table{Title: "Replica spread", Header: []string{"metric", "mean", "stderr", "min", "max"}}
		addSpread := func(name string, m service.MetricSummary) {
			sp.AddRow(name,
				fmt.Sprintf("%.4g", m.Mean), fmt.Sprintf("%.3g", m.StdErr),
				fmt.Sprintf("%.4g", m.Min), fmt.Sprintf("%.4g", m.Max))
		}
		addSpread("uncorrectable errors", res.UEs)
		addSpread("scrub writes", res.ScrubWrites)
		addSpread("scrub energy (pJ)", res.ScrubEnergyPJ)
		if err := sp.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// pollBackoff computes the jittered exponential poll delay for attempt n
// (0-based): ceiling 50ms<<n capped at 2s, drawn uniformly from the
// ceiling's upper half so the daemon is polled neither in lockstep nor
// too lazily.
func pollBackoff(attempt int) time.Duration {
	const (
		base = 50 * time.Millisecond
		max  = 2 * time.Second
	)
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	half := ceil / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// retryAfter extracts a 429 reply's Retry-After delay (seconds form),
// falling back to fallback when absent or unparseable.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// submitJob POSTs the spec to scrubd's jobs API — retrying a 429
// (queue-full) submission after the daemon's Retry-After hint — and
// polls the job with jittered exponential backoff until it reaches a
// terminal state. A non-zero pollTimeout bounds the whole wait.
func submitJob(ctx context.Context, base string, spec service.Spec, pollTimeout time.Duration) (*service.Result, error) {
	if pollTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pollTimeout)
		defer cancel()
	}
	base = strings.TrimSuffix(base, "/")
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, fmt.Errorf("submit to %s: %w", base, err)
		}
		raw, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if readErr != nil {
			return nil, readErr
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			// 429 is queue-full or tenant rate limiting, 503 is load
			// shedding; both are back-pressure, not outages, and both
			// carry a Retry-After worth honouring.
			wait := retryAfter(resp, pollBackoff(attempt))
			fmt.Fprintf(os.Stderr, "scrubsim: daemon busy (%s), retrying submission in %s\n",
				strings.TrimSpace(string(raw)), wait.Round(time.Millisecond))
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("submit to %s: %w", base, ctx.Err())
			case <-time.After(wait):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("submit to %s: %s: %s", base, resp.Status, strings.TrimSpace(string(raw)))
		}
		if err := json.Unmarshal(raw, &sub); err != nil || sub.ID == "" {
			return nil, fmt.Errorf("submit to %s: unexpected reply %q", base, raw)
		}
		break
	}
	fmt.Fprintf(os.Stderr, "scrubsim: submitted job %s\n", sub.ID)

	for attempt := 0; ; attempt++ {
		view, err := fetchJob(ctx, base, sub.ID)
		if err != nil {
			return nil, err
		}
		switch view.State {
		case "done":
			if view.Result == nil {
				return nil, fmt.Errorf("job %s done without a result", sub.ID)
			}
			var res service.Result
			if err := json.Unmarshal(view.Result, &res); err != nil {
				return nil, fmt.Errorf("decode job %s result: %w", sub.ID, err)
			}
			return &res, nil
		case "failed":
			return nil, fmt.Errorf("job %s failed: %s", sub.ID, view.Error)
		case "cancelled":
			return nil, fmt.Errorf("job %s was cancelled", sub.ID)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("waiting for job %s: %w", sub.ID, ctx.Err())
		case <-time.After(pollBackoff(attempt)):
		}
	}
}

// fetchJob reads one job view from the daemon.
func fetchJob(ctx context.Context, base, id string) (*service.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("poll job %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("poll job %s: %s: %s", id, resp.Status, strings.TrimSpace(string(raw)))
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("decode job %s view: %w", id, err)
	}
	return &view, nil
}

// recordTrace samples the workload's event stream over the system horizon
// and writes it to path in the replayable text format.
func recordTrace(sys core.System, w trace.Workload, path string) error {
	gen, err := trace.NewGenerator(w, sys.Geometry.TotalLines(), stats.NewRNG(sys.Seed))
	if err != nil {
		return err
	}
	events, err := trace.Record(gen, stats.NewRNG(sys.Seed+1), sys.Horizon, 100)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteEvents(f, events); err != nil {
		return err
	}
	fmt.Printf("recorded %d events over %s to %s\n", len(events), core.FmtSeconds(sys.Horizon), path)
	return nil
}

// loadTrace reads a trace file and wraps it in a replayer sized to the
// simulated region.
func loadTrace(sys core.System, path string) (sim.TrafficSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadEvents(f)
	if err != nil {
		return nil, err
	}
	return trace.NewReplayer(events, sys.Geometry.TotalLines())
}

// parsePolicy builds a policy from a compact CLI spec (shared with the
// scrubd job API).
func parsePolicy(spec string) (scrub.Policy, error) {
	return scrub.ByName(spec)
}
