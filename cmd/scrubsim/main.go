// Command scrubsim runs a single scrub-mechanism simulation and prints a
// detailed report: reliability, scrub activity, energy breakdown, wear,
// and the estimated performance overhead.
//
// Usage:
//
//	scrubsim [flags]
//
// Examples:
//
//	scrubsim -mechanism basic -workload db-oltp
//	scrubsim -mechanism combined -workload idle-archive -horizon 604800
//	scrubsim -scheme BCH-4 -policy threshold-3 -interval 7200 -workload kv-store
//	scrubsim -workload kv-store -record kv.trace          # export a trace
//	scrubsim -trace kv.trace -mechanism combined          # replay it
//	scrubsim -mechanism combined -json                    # machine-readable result
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/scrub"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrubsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechName = flag.String("mechanism", "combined", "suite mechanism: basic|strong-ecc|light-detect|threshold|combined (overridden by -scheme/-policy)")
		workload = flag.String("workload", "db-oltp", "built-in workload name (see -list)")
		horizon  = flag.Float64("horizon", 0, "simulated seconds (0 = system default)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		interval = flag.Float64("interval", 0, "initial scrub interval seconds (0 = derived)")
		schemeN  = flag.String("scheme", "", "override ECC scheme: SECDED or BCH-<t>")
		policyN  = flag.String("policy", "", "override policy: basic|always|light|threshold-<k>|combined-<k>")
		aged     = flag.Uint64("aged", 0, "pre-age every line by this many writes")
		gap      = flag.Uint64("gap", 0, "enable Start-Gap wear leveling with this gap-move period (0 = off)")
		slc      = flag.Float64("slc", 0, "fraction of writes stored drift-free in SLC form (form switch)")
		ecpN     = flag.Int("ecp", 0, "error-correcting pointer entries per line (0 = off)")
		traceIn  = flag.String("trace", "", "replay demand writes from this trace file instead of the synthetic workload")
		record   = flag.String("record", "", "record the workload's event stream to this trace file and exit")
		list     = flag.Bool("list", false, "list workloads and mechanisms, then exit")
		jsonOut  = flag.Bool("json", false, "emit the run result as a single JSON object (the scrubd result encoding)")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this long (0 = no limit)")

		faultRead      = flag.Float64("fault-read", 0, "per-visit probability a scrub read flips extra bits")
		faultReadBits  = flag.Int("fault-read-bits", 0, "max phantom bits per faulty read (0 = default)")
		faultSkip      = flag.Float64("fault-skip", 0, "per-sweep probability the sweep is cut short")
		faultProbeMiss = flag.Float64("fault-probe-miss", 0, "probability a dirty light probe aliases to clean")
		faultStuck     = flag.Float64("fault-stuck", 0, "per-line probability of stuck ECC check bits")
		faultStall     = flag.Float64("fault-stall", 0, "per-sweep probability of a controller stall")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads: ")
		for _, n := range trace.Names() {
			fmt.Println("  ", n)
		}
		fmt.Println("mechanisms: basic strong-ecc light-detect threshold combined")
		return nil
	}

	sys := core.DefaultSystem()
	sys.Seed = *seed
	if *horizon > 0 {
		sys.Horizon = *horizon
	}
	if *aged > 0 {
		sys.InitialLineWrites = uint32(*aged)
	}
	plan := &fault.Plan{
		ReadFlipRate:    *faultRead,
		ReadFlipMaxBits: *faultReadBits,
		SweepSkipRate:   *faultSkip,
		ProbeMissRate:   *faultProbeMiss,
		StuckCheckRate:  *faultStuck,
		StallRate:       *faultStall,
	}
	// Validate before the Enabled gate: a negative rate must be rejected,
	// not silently treated as "no faults".
	if err := plan.Validate(); err != nil {
		return err
	}
	if plan.Enabled() {
		sys.Fault = plan
	}

	w, err := trace.ByName(*workload)
	if err != nil {
		return err
	}

	if *record != "" {
		return recordTrace(sys, w, *record)
	}
	var source sim.TrafficSource
	if *traceIn != "" {
		source, err = loadTrace(sys, *traceIn)
		if err != nil {
			return err
		}
	}

	mech, err := core.SuiteMechanism(sys, *mechName)
	if err != nil {
		return err
	}
	if *schemeN != "" {
		s, err := ecc.ByName(*schemeN)
		if err != nil {
			return err
		}
		mech.Scheme = s
		mech.Name = *schemeN + "+" + mech.Policy.Name()
	}
	if *policyN != "" {
		p, err := parsePolicy(*policyN)
		if err != nil {
			return err
		}
		mech.Policy = p
		mech.Name = mech.Scheme.Name() + "+" + p.Name()
	}
	if *interval > 0 {
		mech.Interval = *interval
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := core.RunOneWithOptionsContext(ctx, sys, mech, w, core.Options{
		GapMovePeriod: *gap,
		SLCFraction:   *slc,
		Source:        source,
		ECPEntries:    *ecpN,
	})
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(service.NewRunMetrics(res))
	}

	fmt.Printf("mechanism  %s (scheme %s, policy %s)\n", mech.Name, mech.Scheme.Name(), mech.Policy.Name())
	fmt.Printf("workload   %s\n", w.Name)
	fmt.Printf("region     %d lines (%d KiB data), horizon %s, initial interval %s\n",
		res.Lines, int64(res.Lines)*64/1024, core.FmtSeconds(res.SimSeconds), core.FmtSeconds(mech.Interval))
	fmt.Println()

	rel := core.Table{Title: "Reliability", Header: []string{"metric", "value"}}
	rel.AddRow("uncorrectable errors", core.FmtCount(res.UEs))
	rel.AddRow("UE rate (per GB-day)", fmt.Sprintf("%.3f", res.UERatePerGBDay(64)))
	rel.AddRow("corrected bits", core.FmtCount(res.CorrectedBits))
	rel.AddRow("worst line errors", fmt.Sprintf("%d bits", res.MaxErrBits))
	if err := rel.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	act := core.Table{Title: "Scrub activity", Header: []string{"metric", "value"}}
	act.AddRow("sweeps", core.FmtCount(int64(res.Sweeps)))
	act.AddRow("visits", core.FmtCount(res.ScrubVisits))
	act.AddRow("light probes", core.FmtCount(res.ScrubProbes))
	act.AddRow("full decodes", core.FmtCount(res.ScrubDecodes))
	act.AddRow("policy write-backs", core.FmtCount(res.ScrubWriteBacks))
	act.AddRow("UE repair writes", core.FmtCount(res.RepairWrites))
	act.AddRow("final interval", core.FmtSeconds(res.FinalInterval))
	if err := act.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	en := core.Table{Title: "Scrub energy", Header: []string{"component", "energy"}}
	en.AddRow("array reads", core.FmtEnergy(res.ScrubEnergy.ReadPJ))
	en.AddRow("decode", core.FmtEnergy(res.ScrubEnergy.DecodePJ))
	en.AddRow("light detect", core.FmtEnergy(res.ScrubEnergy.DetectPJ))
	en.AddRow("write-backs", core.FmtEnergy(res.ScrubEnergy.WritePJ))
	en.AddRow("total", core.FmtEnergy(res.ScrubEnergy.Total()))
	if err := en.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	wearT := core.Table{Title: "Wear and demand", Header: []string{"metric", "value"}}
	wearT.AddRow("demand writes", core.FmtCount(res.DemandWrites))
	wearT.AddRow("total line writes", core.FmtCount(res.TotalLineWrites))
	wearT.AddRow("max slot writes", core.FmtCount(int64(res.MaxLineWrites)))
	wearT.AddRow("lines with dead cells", core.FmtCount(int64(res.LinesWithDead)))
	wearT.AddRow("dead cells", core.FmtCount(res.DeadCells))
	if *gap > 0 {
		wearT.AddRow("leveler gap moves", core.FmtCount(res.LevelerMoves))
	}
	if err := wearT.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	if sys.Fault.Enabled() && res.Faults.Any() {
		ft := core.Table{Title: "Injected faults", Header: []string{"metric", "value"}}
		ft.AddRow("faulty scrub reads", core.FmtCount(res.Faults.ReadFaultVisits))
		ft.AddRow("phantom bits", core.FmtCount(res.Faults.PhantomBits))
		ft.AddRow("sweeps interrupted", core.FmtCount(res.Faults.SweepsInterrupted))
		ft.AddRow("lines skipped", core.FmtCount(res.Faults.LinesSkipped))
		ft.AddRow("probe false-cleans", core.FmtCount(res.Faults.ProbeFalseCleans))
		ft.AddRow("stuck-check lines", core.FmtCount(res.Faults.StuckCheckLines))
		ft.AddRow("stuck-bit decodes", core.FmtCount(res.Faults.StuckDecodes))
		ft.AddRow("controller stalls", core.FmtCount(res.Faults.Stalls))
		ft.AddRow("stall time", core.FmtSeconds(res.Faults.StallSeconds))
		ft.AddRow("fault-induced UEs", core.FmtCount(res.Faults.InducedUEs))
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if res.UEs > 0 {
		det := core.Table{Title: "UE detection", Header: []string{"metric", "value"}}
		det.AddRow("read-first UEs", core.FmtCount(res.UEsReadFirst))
		det.AddRow("mean latency", core.FmtSeconds(res.UEDetectDelay.Mean()))
		det.AddRow("max latency", core.FmtSeconds(res.UEDetectDelay.Max()))
		if err := det.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	slow, err := core.PerfOverhead(sys, w, res)
	if err != nil {
		return err
	}
	fmt.Printf("estimated demand slowdown from scrub traffic: %.4fx\n", slow)
	return nil
}

// recordTrace samples the workload's event stream over the system horizon
// and writes it to path in the replayable text format.
func recordTrace(sys core.System, w trace.Workload, path string) error {
	gen, err := trace.NewGenerator(w, sys.Geometry.TotalLines(), stats.NewRNG(sys.Seed))
	if err != nil {
		return err
	}
	events, err := trace.Record(gen, stats.NewRNG(sys.Seed+1), sys.Horizon, 100)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteEvents(f, events); err != nil {
		return err
	}
	fmt.Printf("recorded %d events over %s to %s\n", len(events), core.FmtSeconds(sys.Horizon), path)
	return nil
}

// loadTrace reads a trace file and wraps it in a replayer sized to the
// simulated region.
func loadTrace(sys core.System, path string) (sim.TrafficSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadEvents(f)
	if err != nil {
		return nil, err
	}
	return trace.NewReplayer(events, sys.Geometry.TotalLines())
}

// parsePolicy builds a policy from a compact CLI spec (shared with the
// scrubd job API).
func parsePolicy(spec string) (scrub.Policy, error) {
	return scrub.ByName(spec)
}
