package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scrub"
	"repro/internal/service"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		spec   string
		name   string
		detect scrub.Detection
	}{
		{"basic", "basic", scrub.FullDecode},
		{"always", "always-write", scrub.FullDecode},
		{"light", "basic+light", scrub.LightDetect},
		{"threshold-3", "threshold-3", scrub.FullDecode},
		{"combined-5", "combined", scrub.LightDetect},
	}
	for _, c := range cases {
		p, err := parsePolicy(c.spec)
		if err != nil {
			t.Fatalf("parsePolicy(%q): %v", c.spec, err)
		}
		if p.Name() != c.name {
			t.Errorf("parsePolicy(%q).Name() = %q, want %q", c.spec, p.Name(), c.name)
		}
		if p.Detection() != c.detect {
			t.Errorf("parsePolicy(%q) detection = %v, want %v", c.spec, p.Detection(), c.detect)
		}
	}
}

func TestParsePolicyThresholdSemantics(t *testing.T) {
	p, err := parsePolicy("threshold-4")
	if err != nil {
		t.Fatal(err)
	}
	if p.ShouldWriteBack(scrub.VisitInfo{ErrBits: 3}) {
		t.Error("threshold-4 wrote at 3 errors")
	}
	if !p.ShouldWriteBack(scrub.VisitInfo{ErrBits: 4}) {
		t.Error("threshold-4 refused at 4 errors")
	}
}

func TestParsePolicyRejectsUnknown(t *testing.T) {
	for _, spec := range []string{"", "bogus", "threshold-", "threshold-x", "combined"} {
		if _, err := parsePolicy(spec); err == nil {
			t.Errorf("parsePolicy(%q) accepted", spec)
		}
	}
}

// TestSubmitJobRoundTrip drives the -submit client path against a real
// in-process scrubd service and checks the remote result matches a local
// run of the same spec.
func TestSubmitJobRoundTrip(t *testing.T) {
	svc := service.New(service.Config{QueueCapacity: 4, Workers: 1, CacheCapacity: 4})
	defer shutdownService(t, svc)
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	spec := service.Spec{
		Mechanism:  "basic",
		Workload:   "db-oltp",
		HorizonSec: 20000,
		Seed:       3,
		Replicas:   2,
		Geometry: &service.GeometrySpec{
			Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
			RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
		},
	}
	got, err := submitJob(context.Background(), srv.URL, spec, time.Minute)
	if err != nil {
		t.Fatalf("submitJob: %v", err)
	}

	norm, err := spec.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	want, err := service.DefaultRunner(context.Background(), norm)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("remote result differs from local:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// The remote result reconstructs into the local report inputs.
	if len(got.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(got.Runs))
	}
	res0 := got.Runs[0].ToSimResult()
	sys, _, w, err := got.Spec.Build()
	if err != nil {
		t.Fatalf("rebuild spec: %v", err)
	}
	if _, err := core.PerfOverhead(sys, w, res0); err != nil {
		t.Errorf("PerfOverhead on reconstructed result: %v", err)
	}
}

// TestSubmitJobBadSpec pins that a daemon-side validation error surfaces
// as a submit error, not a hang.
func TestSubmitJobBadSpec(t *testing.T) {
	svc := service.New(service.Config{QueueCapacity: 4, Workers: 1, CacheCapacity: 4})
	defer shutdownService(t, svc)
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	_, err := submitJob(context.Background(), srv.URL, service.Spec{Workload: "no-such-workload"}, time.Minute)
	if err == nil {
		t.Fatal("submitJob accepted an invalid spec")
	}
}

func shutdownService(t *testing.T, svc *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Errorf("service shutdown: %v", err)
	}
}
