package main

import (
	"testing"

	"repro/internal/scrub"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		spec   string
		name   string
		detect scrub.Detection
	}{
		{"basic", "basic", scrub.FullDecode},
		{"always", "always-write", scrub.FullDecode},
		{"light", "basic+light", scrub.LightDetect},
		{"threshold-3", "threshold-3", scrub.FullDecode},
		{"combined-5", "combined", scrub.LightDetect},
	}
	for _, c := range cases {
		p, err := parsePolicy(c.spec)
		if err != nil {
			t.Fatalf("parsePolicy(%q): %v", c.spec, err)
		}
		if p.Name() != c.name {
			t.Errorf("parsePolicy(%q).Name() = %q, want %q", c.spec, p.Name(), c.name)
		}
		if p.Detection() != c.detect {
			t.Errorf("parsePolicy(%q) detection = %v, want %v", c.spec, p.Detection(), c.detect)
		}
	}
}

func TestParsePolicyThresholdSemantics(t *testing.T) {
	p, err := parsePolicy("threshold-4")
	if err != nil {
		t.Fatal(err)
	}
	if p.ShouldWriteBack(scrub.VisitInfo{ErrBits: 3}) {
		t.Error("threshold-4 wrote at 3 errors")
	}
	if !p.ShouldWriteBack(scrub.VisitInfo{ErrBits: 4}) {
		t.Error("threshold-4 refused at 4 errors")
	}
}

func TestParsePolicyRejectsUnknown(t *testing.T) {
	for _, spec := range []string{"", "bogus", "threshold-", "threshold-x", "combined"} {
		if _, err := parsePolicy(spec); err == nil {
			t.Errorf("parsePolicy(%q) accepted", spec)
		}
	}
}
