// Command drifttool explores the MLC PCM drift model analytically: error
// probabilities over time, expected line error counts, safe scrub
// intervals, and the effect of parameter changes — without running the
// Monte Carlo simulator.
//
// Usage:
//
//	drifttool                      # default parameter report
//	drifttool -signu 0.06 -sigma 0.1
//	drifttool -target 1e-5 -cells 256
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/pcm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drifttool:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sigma  = flag.Float64("sigma", 0, "programming noise in decades (0 = default)")
		signu2 = flag.Float64("signu", 0, "drift-exponent sigma for level 2 (0 = default)")
		cells  = flag.Int("cells", pcm.CellsPerLine, "cells per line")
		target = flag.Float64("target", 1e-4, "per-line risk target for interval table")
		levels = flag.Int("levels", 0, "density study: levels per cell (0 = skip; try 2/4/8/16)")
	)
	flag.Parse()

	if *levels > 0 {
		return densityReport(*levels, *cells)
	}

	p := pcm.DefaultParams()
	if *sigma > 0 {
		p.SigmaProg = *sigma
	}
	if *signu2 > 0 {
		p.NuSigma[2] = *signu2
	}
	model, err := pcm.NewModel(p)
	if err != nil {
		return err
	}

	fmt.Printf("MLC PCM drift model (sigma_prog=%.3f, nu2=%.3f±%.3f)\n\n",
		p.SigmaProg, p.NuMean[2], p.NuSigma[2])

	probT := core.Table{Title: "Per-cell error probability", Header: []string{
		"time", "level 0", "level 1", "level 2", "E[line errors]"}}
	for _, secs := range []float64{1, 60, 3600, 86400, 604800, 2.6e6, 3.2e7} {
		probT.AddRow(core.FmtSeconds(secs),
			fmt.Sprintf("%.2e", model.ErrProb(0, secs)),
			fmt.Sprintf("%.2e", model.ErrProb(1, secs)),
			fmt.Sprintf("%.2e", model.ErrProb(2, secs)),
			fmt.Sprintf("%.3f", model.ExpectedLineErrors(pcm.UniformMix(), *cells, secs)))
	}
	if err := probT.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	ivT := core.Table{Title: fmt.Sprintf("Safe scrub interval at risk %g per line-sweep", *target),
		Header: []string{"tolerable errors", "interval"}}
	for _, tol := range []int{1, 2, 3, 4, 6, 8, 12} {
		iv := model.ScrubIntervalFor(pcm.UniformMix(), *cells, tol, *target)
		s := core.FmtSeconds(iv)
		if math.IsInf(iv, 1) {
			s = "unbounded"
		} else if iv == 0 {
			s = "unreachable"
		}
		ivT.AddRow(fmt.Sprintf("%d", tol), s)
	}
	if err := ivT.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	tailT := core.Table{Title: "P(line accumulates >= k errors)", Header: []string{
		"time", "k=1", "k=2", "k=4", "k=8"}}
	for _, secs := range []float64{3600, 86400, 604800} {
		row := []string{core.FmtSeconds(secs)}
		for _, k := range []int{1, 2, 4, 8} {
			row = append(row, fmt.Sprintf("%.2e",
				model.LineErrorTailGE(pcm.UniformMix(), *cells, k, secs)))
		}
		tailT.AddRow(row...)
	}
	return tailT.Render(os.Stdout)
}

// densityReport prints the generalised n-level model's error growth and
// safe intervals.
func densityReport(levels, cells int) error {
	m, err := pcm.NewMultiLevel(levels)
	if err != nil {
		return err
	}
	fmt.Printf("%d-level cell (%.1f bits): window %.1f decades, margin %.3f decades\n\n",
		levels, m.BitsPerCell(), m.WindowDecades, m.WindowDecades/float64(levels-1)/2)
	t := core.Table{Title: "Expected line errors over time", Header: []string{"time", "E[errors]"}}
	for _, secs := range []float64{60, 3600, 86400, 604800, 2.6e6} {
		t.AddRow(core.FmtSeconds(secs), fmt.Sprintf("%.4g", m.ExpectedLineErrors(cells, secs)))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	iv := core.Table{Title: "Safe interval vs tolerated expected errors", Header: []string{"budget", "interval"}}
	for _, budget := range []float64{0.1, 0.5, 1, 2, 4} {
		s := m.SafeInterval(cells, budget)
		label := core.FmtSeconds(s)
		if s == 0 {
			label = "unreachable"
		} else if s >= math.Pow(10, m.MaxLog10Time) {
			label = "unbounded"
		}
		iv.AddRow(fmt.Sprintf("%.1f", budget), label)
	}
	return iv.Render(os.Stdout)
}
