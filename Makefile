# Build and verification entry points. `make check` is what CI runs.

GO ?= go
FUZZTIME ?= 15s

.PHONY: all build vet test race fuzz check experiments serve smoke-serve vulncheck clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing rounds on the codec round-trip properties. The committed
# seed corpus under testdata/fuzz/ always runs as part of `make test`;
# this target additionally explores new inputs for FUZZTIME per target.
fuzz:
	$(GO) test -fuzz=FuzzBCHRoundTrip -fuzztime=$(FUZZTIME) ./internal/bch/
	$(GO) test -fuzz=FuzzBCHLineRoundTrip -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -fuzz=FuzzSECDEDLineRoundTrip -fuzztime=$(FUZZTIME) ./internal/ecc/

check: vet build race

# Regenerate every table at CI scale.
experiments:
	$(GO) run ./cmd/experiments -quick

# Run the scrub-simulation daemon (HTTP/JSON API on 127.0.0.1:8344).
serve:
	$(GO) run ./cmd/scrubd

# A tiny job that completes in well under a second.
SMOKE_SPEC = {"mechanism":"basic","workload":"db-oltp","horizon_sec":20000,"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,"rows_per_bank":8,"lines_per_row":8,"line_bytes":64}}

# smoke-serve boots scrubd on an ephemeral port, submits SMOKE_SPEC,
# asserts a 200 completed result, and drains the daemon via SIGTERM.
smoke-serve:
	@set -e; \
	dir=$$(mktemp -d); bin=$$dir/scrubd; log=$$dir/scrubd.log; \
	$(GO) build -o $$bin ./cmd/scrubd; \
	$$bin -addr 127.0.0.1:0 >$$log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; echo "smoke-serve: daemon at $$base"; \
	id=$$(curl -sf -X POST $$base/v1/jobs -d '$(SMOKE_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id"; echo "smoke-serve: submitted $$id"; \
	state=""; \
	for i in $$(seq 1 100); do \
		code=$$(curl -s -o /dev/null -w '%{http_code}' $$base/v1/jobs/$$id); \
		test "$$code" = 200; \
		state=$$(curl -sf $$base/v1/jobs/$$id | sed -n 's/.*"state":"\([^"]*\)".*/\1/p'); \
		[ "$$state" = done ] && break; \
		[ "$$state" = failed ] && { echo "smoke-serve: job failed"; cat $$log; exit 1; }; \
		sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "smoke-serve: job stuck in $$state"; exit 1; }; \
	curl -sf $$base/v1/jobs/$$id | grep -q '"ues"'; \
	curl -sf $$base/metrics | grep -q 'scrubd_jobs_completed_total 1'; \
	kill -TERM $$pid; wait $$pid; \
	grep -q 'scrubd: stopped' $$log; \
	rm -rf $$dir; \
	echo "smoke-serve: OK"

# vulncheck runs the Go vulnerability scanner when installed (CI installs
# it; locally: go install golang.org/x/vuln/cmd/govulncheck@latest).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; \
	fi

clean:
	$(GO) clean ./...
