# Build and verification entry points. `make check` is what CI runs.

GO ?= go
FUZZTIME ?= 15s

.PHONY: all build vet test race fuzz check lint bench bench-gate experiments serve smoke-serve smoke-cluster smoke-crash smoke-fleet smoke-ondie smoke-overload vulncheck clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing rounds on the codec round-trip properties. The committed
# seed corpus under testdata/fuzz/ always runs as part of `make test`;
# this target additionally explores new inputs for FUZZTIME per target.
fuzz:
	$(GO) test -fuzz=FuzzBCHRoundTrip -fuzztime=$(FUZZTIME) ./internal/bch/
	$(GO) test -fuzz=FuzzBCHDecodeDifferential -fuzztime=$(FUZZTIME) ./internal/bch/
	$(GO) test -fuzz=FuzzBCHLineRoundTrip -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -fuzz=FuzzSECDEDLineRoundTrip -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -fuzz=FuzzSECDEDDecodeDifferential -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -fuzz=FuzzOnDieWordRoundTrip -fuzztime=$(FUZZTIME) ./internal/ondie/

check: vet build race

# lint runs go vet always and staticcheck when installed (CI installs
# it; locally: go install honnef.co/go/tools/cmd/staticcheck@latest).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping"; \
	fi

# bench refreshes the committed engine perf baseline: run the hot-loop
# engine benchmarks plus the per-codec kernel/reference pairs with
# -benchmem and render them as BENCH_engine.json via cmd/benchjson. The
# comparison block asserts the pooled engine against the legacy-shaped
# (pooling-disabled) run; the codecs block carries the kernel-vs-scalar
# speedup per codec, which bench-gate (and CI) holds to its floors.
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkEngineRun|BenchmarkLegacySimRun|BenchmarkBCHDecode|BenchmarkSECDEDLineDecode|BenchmarkOnDieDecode' \
		-benchmem -benchtime 2s -count 1 \
		./internal/engine ./internal/ecc ./internal/ondie | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson > BENCH_engine.json
	@echo "bench: wrote BENCH_engine.json"

# bench-gate enforces the codec kernel speedup floors (BCH line decode
# >= 5x, SECDED line decode >= 3x over the scalar reference) against the
# committed baseline.
bench-gate:
	$(GO) run ./cmd/benchjson -gate BENCH_engine.json

# Regenerate every table at CI scale.
experiments:
	$(GO) run ./cmd/experiments -quick

# Run the scrub-simulation daemon (HTTP/JSON API on 127.0.0.1:8344).
serve:
	$(GO) run ./cmd/scrubd

# A tiny job that completes in well under a second.
SMOKE_SPEC = {"mechanism":"basic","workload":"db-oltp","horizon_sec":20000,"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,"rows_per_bank":8,"lines_per_row":8,"line_bytes":64}}

# smoke-serve boots scrubd on an ephemeral port, submits SMOKE_SPEC,
# asserts a 200 completed result, and drains the daemon via SIGTERM.
smoke-serve:
	@set -e; \
	dir=$$(mktemp -d); bin=$$dir/scrubd; log=$$dir/scrubd.log; \
	$(GO) build -o $$bin ./cmd/scrubd; \
	$$bin -addr 127.0.0.1:0 >$$log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; echo "smoke-serve: daemon at $$base"; \
	id=$$(curl -sf -X POST $$base/v1/jobs -d '$(SMOKE_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id"; echo "smoke-serve: submitted $$id"; \
	state=""; \
	for i in $$(seq 1 100); do \
		code=$$(curl -s -o /dev/null -w '%{http_code}' $$base/v1/jobs/$$id); \
		test "$$code" = 200; \
		state=$$(curl -sf $$base/v1/jobs/$$id | sed -n 's/.*"state":"\([^"]*\)".*/\1/p'); \
		[ "$$state" = done ] && break; \
		[ "$$state" = failed ] && { echo "smoke-serve: job failed"; cat $$log; exit 1; }; \
		sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "smoke-serve: job stuck in $$state"; exit 1; }; \
	curl -sf $$base/v1/jobs/$$id | grep -q '"ues"'; \
	curl -sf $$base/metrics | grep -q 'scrubd_jobs_completed_total 1'; \
	kill -TERM $$pid; wait $$pid; \
	grep -q 'scrubd: stopped' $$log; \
	rm -rf $$dir; \
	echo "smoke-serve: OK"

# smoke-cluster boots a coordinator and two workers, runs a replicated
# job through the sharded cluster path via `scrubsim -submit`, kills one
# worker, and proves the degraded fleet still completes jobs.
smoke-cluster:
	@set -e; \
	dir=$$(mktemp -d); log=$$dir/coord.log; \
	$(GO) build -o $$dir/scrubd ./cmd/scrubd; \
	$(GO) build -o $$dir/scrubsim ./cmd/scrubsim; \
	$$dir/scrubd -addr 127.0.0.1:0 -role coordinator -heartbeat 500ms >$$log 2>&1 & cpid=$$!; \
	trap 'kill $$cpid $$w1 $$w2 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; echo "smoke-cluster: coordinator at $$base"; \
	$$dir/scrubd -addr 127.0.0.1:0 -role worker -join $$base -heartbeat 500ms >$$dir/w1.log 2>&1 & w1=$$!; \
	$$dir/scrubd -addr 127.0.0.1:0 -role worker -join $$base -heartbeat 500ms >$$dir/w2.log 2>&1 & w2=$$!; \
	for i in $$(seq 1 100); do \
		curl -sf $$base/healthz | grep -q '"live_workers":2' && break; sleep 0.1; \
	done; \
	curl -sf $$base/healthz | grep -q '"live_workers":2' || { echo "smoke-cluster: workers never joined"; cat $$log; exit 1; }; \
	echo "smoke-cluster: two workers joined"; \
	$$dir/scrubsim -submit $$base -mechanism basic -workload db-oltp -horizon 20000 -replicas 8 >$$dir/job1.out; \
	grep -q 'estimated demand slowdown' $$dir/job1.out; \
	curl -sf $$base/metrics | grep -q 'scrubd_cluster_jobs_sharded_total 1'; \
	echo "smoke-cluster: sharded job completed"; \
	kill $$w1; wait $$w1 2>/dev/null || true; \
	for i in $$(seq 1 100); do \
		curl -sf $$base/healthz | grep -q '"live_workers":1' && break; sleep 0.1; \
	done; \
	curl -sf $$base/healthz | grep -q '"live_workers":1' || { echo "smoke-cluster: dead worker not detected"; exit 1; }; \
	echo "smoke-cluster: worker death detected"; \
	$$dir/scrubsim -submit $$base -mechanism basic -workload db-oltp -horizon 20000 -seed 2 -replicas 8 >$$dir/job2.out; \
	grep -q 'estimated demand slowdown' $$dir/job2.out; \
	echo "smoke-cluster: degraded fleet completed a job"; \
	kill -TERM $$cpid; wait $$cpid 2>/dev/null || true; \
	kill $$w2 2>/dev/null || true; \
	grep -q 'scrubd: stopped' $$log; \
	rm -rf $$dir; \
	echo "smoke-cluster: OK"

# A multi-shard job slow enough (~1s/replica) that scale events land
# mid-campaign.
ELASTIC_SPEC = {"mechanism":"basic","workload":"db-oltp","horizon_sec":1500000,"seed":21,"replicas":8,"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,"rows_per_bank":8,"lines_per_row":8,"line_bytes":64}}

# smoke-cluster-elastic proves elastic scale events end to end with real
# processes: a coordinator plus two workers (one behind a seeded
# chaosproxy), a multi-shard campaign during which a third worker joins
# (scale-up) and a worker is SIGKILLed (scale-down), and the final
# result must be byte-identical to the same spec on a clean standalone
# daemon.
smoke-cluster-elastic:
	@set -e; \
	dir=$$(mktemp -d); log=$$dir/coord.log; \
	$(GO) build -o $$dir/scrubd ./cmd/scrubd; \
	$(GO) build -o $$dir/chaosproxy ./cmd/chaosproxy; \
	$$dir/scrubd -addr 127.0.0.1:0 -role coordinator -heartbeat 250ms -speculate-after 500ms >$$log 2>&1 & cpid=$$!; \
	trap 'kill -9 $$cpid $$w1 $$w2 $$w3 $$ppid $$clpid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; echo "smoke-cluster-elastic: coordinator at $$base"; \
	$$dir/scrubd -addr 127.0.0.1:0 >$$dir/probe.log 2>&1 & tpid=$$!; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$dir/probe.log && break; sleep 0.1; done; \
	wbase=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$dir/probe.log); \
	test -n "$$wbase"; waddr=$${wbase#http://}; \
	kill $$tpid; wait $$tpid 2>/dev/null || true; \
	$$dir/chaosproxy -upstream $$waddr -seed 7 -pass 6 -drop 1 -delay 1 -latency 20ms >$$dir/proxy.log 2>&1 & ppid=$$!; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$dir/proxy.log && break; sleep 0.1; done; \
	purl=$$(sed -n 's/^chaosproxy: listening on \(http[^ ]*\).*/\1/p' $$dir/proxy.log); \
	test -n "$$purl"; echo "smoke-cluster-elastic: chaosproxy $$purl -> $$waddr"; \
	$$dir/scrubd -addr 127.0.0.1:0 -role worker -join $$base -heartbeat 250ms >$$dir/w1.log 2>&1 & w1=$$!; \
	$$dir/scrubd -addr $$waddr -role worker -join $$base -advertise $$purl -heartbeat 250ms >$$dir/w2.log 2>&1 & w2=$$!; \
	for i in $$(seq 1 100); do curl -sf $$base/healthz | grep -q '"live_workers":2' && break; sleep 0.1; done; \
	curl -sf $$base/healthz | grep -q '"live_workers":2' || { echo "smoke-cluster-elastic: workers never joined"; cat $$log; exit 1; }; \
	echo "smoke-cluster-elastic: two workers joined (one behind chaos)"; \
	id=$$(curl -sf -X POST $$base/v1/jobs -d '$(ELASTIC_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id"; echo "smoke-cluster-elastic: submitted $$id"; \
	for i in $$(seq 1 100); do curl -s $$base/v1/jobs/$$id | grep -q '"state":"running"' && break; sleep 0.05; done; \
	curl -s $$base/v1/jobs/$$id | grep -q '"state":"running"' || { echo "smoke-cluster-elastic: job never started"; exit 1; }; \
	sleep 0.3; \
	$$dir/scrubd -addr 127.0.0.1:0 -role worker -join $$base -heartbeat 250ms >$$dir/w3.log 2>&1 & w3=$$!; \
	echo "smoke-cluster-elastic: third worker joining mid-campaign"; \
	sleep 0.3; \
	kill -9 $$w1; wait $$w1 2>/dev/null || true; \
	echo "smoke-cluster-elastic: first worker killed mid-campaign"; \
	state=""; \
	for i in $$(seq 1 600); do \
		state=$$(curl -s $$base/v1/jobs/$$id | sed -n 's/.*"state":"\([^"]*\)".*/\1/p'); \
		[ "$$state" = done ] && break; \
		[ "$$state" = failed ] && { echo "smoke-cluster-elastic: job failed"; curl -s $$base/v1/jobs/$$id; cat $$log; exit 1; }; \
		sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "smoke-cluster-elastic: job stuck in '$$state'"; cat $$log; exit 1; }; \
	curl -sf $$base/healthz | grep -q '"ring_version":3' || { echo "smoke-cluster-elastic: healthz ring_version != 3"; curl -s $$base/healthz; exit 1; }; \
	curl -sf $$base/metrics | grep -q 'scrubd_cluster_ring_version 3' || { echo "smoke-cluster-elastic: ring_version metric missing"; exit 1; }; \
	curl -sf $$base/v1/jobs/$$id | sed 's/.*"result"://; s/}$$//' >$$dir/elastic.json; \
	test -s $$dir/elastic.json; \
	$$dir/scrubd -addr 127.0.0.1:0 >$$dir/clean.log 2>&1 & clpid=$$!; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$dir/clean.log && break; sleep 0.1; done; \
	cbase=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$dir/clean.log); \
	test -n "$$cbase"; \
	cid=$$(curl -sf -X POST $$cbase/v1/jobs -d '$(ELASTIC_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	for i in $$(seq 1 600); do \
		curl -s $$cbase/v1/jobs/$$cid | grep -q '"state":"done"' && break; sleep 0.1; \
	done; \
	curl -sf $$cbase/v1/jobs/$$cid | sed 's/.*"result"://; s/}$$//' >$$dir/clean.json; \
	test -s $$dir/clean.json; \
	cmp $$dir/elastic.json $$dir/clean.json || { echo "smoke-cluster-elastic: scale-event result differs from clean run"; exit 1; }; \
	echo "smoke-cluster-elastic: scale-event result is byte-identical to a clean run"; \
	kill -TERM $$ppid; wait $$ppid 2>/dev/null || true; \
	grep -q 'chaosproxy: stopped' $$dir/proxy.log || true; \
	kill -TERM $$cpid $$clpid; wait $$cpid $$clpid 2>/dev/null || true; \
	kill $$w2 $$w3 2>/dev/null || true; \
	rm -rf $$dir; \
	echo "smoke-cluster-elastic: OK"

# A replicated job slow enough (~3s/replica) to kill mid-campaign.
CRASH_SPEC = {"mechanism":"basic","workload":"db-oltp","horizon_sec":4000000,"seed":11,"replicas":8,"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,"rows_per_bank":8,"lines_per_row":8,"line_bytes":64}}

# smoke-crash proves crash recovery end to end: boot a journal-backed
# coordinator plus one worker, submit a multi-shard job, kill -9 the
# coordinator mid-campaign, restart it on the same address and journal,
# and assert the recovered job's result is byte-identical to the same
# spec run on a fresh journal-less daemon.
smoke-crash:
	@set -e; \
	dir=$$(mktemp -d); jdir=$$dir/journal; log=$$dir/coord.log; \
	$(GO) build -o $$dir/scrubd ./cmd/scrubd; \
	$$dir/scrubd -addr 127.0.0.1:0 -role coordinator -heartbeat 250ms -journal-dir $$jdir >$$log 2>&1 & cpid=$$!; \
	trap 'kill -9 $$cpid $$wpid $$cpid2 $$clpid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; addr=$${base#http://}; echo "smoke-crash: coordinator at $$base"; \
	$$dir/scrubd -addr 127.0.0.1:0 -role worker -join $$base -heartbeat 250ms >$$dir/worker.log 2>&1 & wpid=$$!; \
	for i in $$(seq 1 100); do curl -sf $$base/healthz | grep -q '"live_workers":1' && break; sleep 0.1; done; \
	curl -sf $$base/healthz | grep -q '"live_workers":1' || { echo "smoke-crash: worker never joined"; cat $$log; exit 1; }; \
	id=$$(curl -sf -X POST $$base/v1/jobs -d '$(CRASH_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id"; echo "smoke-crash: submitted $$id"; \
	for i in $$(seq 1 100); do curl -s $$base/v1/jobs/$$id | grep -q '"state":"running"' && break; sleep 0.05; done; \
	curl -s $$base/v1/jobs/$$id | grep -q '"state":"running"' || { echo "smoke-crash: job never started"; exit 1; }; \
	sleep 0.5; \
	kill -9 $$cpid; wait $$cpid 2>/dev/null || true; \
	echo "smoke-crash: coordinator killed mid-campaign"; \
	$$dir/scrubd -addr $$addr -role coordinator -heartbeat 250ms -journal-dir $$jdir >$$dir/coord2.log 2>&1 & cpid2=$$!; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$dir/coord2.log && break; sleep 0.1; done; \
	grep -q 'journal replayed' $$dir/coord2.log || { echo "smoke-crash: no journal replay on restart"; cat $$dir/coord2.log; exit 1; }; \
	echo "smoke-crash: journal replayed, waiting for the recovered job"; \
	state=""; \
	for i in $$(seq 1 600); do \
		state=$$(curl -s $$base/v1/jobs/$$id | sed -n 's/.*"state":"\([^"]*\)".*/\1/p'); \
		[ "$$state" = done ] && break; \
		[ "$$state" = failed ] && { echo "smoke-crash: recovered job failed"; cat $$dir/coord2.log; exit 1; }; \
		sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "smoke-crash: recovered job stuck in '$$state'"; cat $$dir/coord2.log; exit 1; }; \
	curl -sf $$base/v1/jobs/$$id | grep -q '"recovered":true' || { echo "smoke-crash: job not marked recovered"; exit 1; }; \
	curl -sf $$base/metrics | grep -q 'scrubd_recovered_jobs_total 1' || { echo "smoke-crash: recovery metric missing"; exit 1; }; \
	curl -sf $$base/v1/jobs/$$id | sed 's/.*"result"://; s/}$$//' >$$dir/recovered.json; \
	test -s $$dir/recovered.json; \
	$$dir/scrubd -addr 127.0.0.1:0 >$$dir/clean.log 2>&1 & clpid=$$!; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$dir/clean.log && break; sleep 0.1; done; \
	cbase=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$dir/clean.log); \
	test -n "$$cbase"; \
	cid=$$(curl -sf -X POST $$cbase/v1/jobs -d '$(CRASH_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	for i in $$(seq 1 600); do \
		curl -s $$cbase/v1/jobs/$$cid | grep -q '"state":"done"' && break; sleep 0.1; \
	done; \
	curl -sf $$cbase/v1/jobs/$$cid | sed 's/.*"result"://; s/}$$//' >$$dir/clean.json; \
	test -s $$dir/clean.json; \
	cmp $$dir/recovered.json $$dir/clean.json || { echo "smoke-crash: recovered result differs from clean run"; exit 1; }; \
	echo "smoke-crash: recovered result is byte-identical to a clean run"; \
	kill -TERM $$cpid2 $$clpid; wait $$cpid2 $$clpid 2>/dev/null || true; \
	kill $$wpid 2>/dev/null || true; \
	rm -rf $$dir; \
	echo "smoke-crash: OK"

# A tiny 128-line device patrolled fast enough (one chunk per 5ms of
# wall time, 900s of simulated time) that drift CEs cross the repair
# threshold within a second or two of booting.
FLEET_SPEC = {"workload":"idle-archive","seed":42,"geometry":{"channels":1,"ranks_per_chan":1,"banks_per_rank":2,"rows_per_bank":8,"lines_per_row":8,"line_bytes":64},"patrol":{"rate_lines_per_sec":0.035555556,"chunk_lines":32,"tick_millis":5},"repair":{"ce_window_sec":864000,"ce_threshold":2,"spare_budget":8}}

# smoke-fleet boots scrubd with the fleet control plane, registers a
# device, waits for telemetry-driven repair to fire, PATCHes the patrol
# rate live, runs a preempting on-demand region scrub, and checks the
# scrubd_fleet_* metrics before draining.
smoke-fleet:
	@set -e; \
	dir=$$(mktemp -d); bin=$$dir/scrubd; log=$$dir/scrubd.log; \
	$(GO) build -o $$bin ./cmd/scrubd; \
	$$bin -version | grep -q '^scrubd ' || { echo "smoke-fleet: -version broken"; exit 1; }; \
	$$bin -addr 127.0.0.1:0 -fleet >$$log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; echo "smoke-fleet: daemon at $$base"; \
	curl -sf $$base/healthz | grep -q '"build"' || { echo "smoke-fleet: healthz missing build stamp"; exit 1; }; \
	id=$$(curl -sf -X POST $$base/v1/fleet/devices -d '$(FLEET_SPEC)' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id"; echo "smoke-fleet: registered $$id"; \
	fired=""; \
	for i in $$(seq 1 100); do \
		curl -sf $$base/v1/fleet/devices/$$id/repairs | grep -q '"seq":1' && { fired=yes; break; }; \
		sleep 0.1; \
	done; \
	[ "$$fired" = yes ] || { echo "smoke-fleet: repair never fired"; curl -s $$base/v1/fleet/devices/$$id; exit 1; }; \
	echo "smoke-fleet: telemetry-driven repair fired"; \
	curl -sf -X PATCH $$base/v1/fleet/devices/$$id/patrol -d '{"rate_lines_per_sec":0.1}' \
		| grep -q '"rate_lines_per_sec":0.1' || { echo "smoke-fleet: live PATCH failed"; exit 1; }; \
	echo "smoke-fleet: patrol rate patched mid-session"; \
	sid=$$(curl -sf -X POST $$base/v1/fleet/devices/$$id/scrubs -d '{"first":0,"count":64}' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$sid"; \
	done_=""; \
	for i in $$(seq 1 100); do \
		curl -sf $$base/v1/fleet/devices/$$id/scrubs/$$sid | grep -q '"state":"done"' && { done_=yes; break; }; \
		sleep 0.1; \
	done; \
	[ "$$done_" = yes ] || { echo "smoke-fleet: region scrub never finished"; exit 1; }; \
	curl -sf $$base/v1/fleet/devices/$$id | grep -q '"preemptions":0' && { echo "smoke-fleet: scrub never preempted patrol"; exit 1; }; \
	echo "smoke-fleet: on-demand scrub preempted patrol and completed"; \
	curl -sf $$base/metrics | grep -q 'scrubd_fleet_devices 1' || { echo "smoke-fleet: fleet metrics missing"; exit 1; }; \
	curl -sf $$base/metrics | grep -q 'scrubd_fleet_scrub_jobs_total 1' || { echo "smoke-fleet: scrub-job metric missing"; exit 1; }; \
	curl -sf $$base/metrics | grep 'scrubd_fleet_repairs_total' | grep -qv ' 0$$' || { echo "smoke-fleet: repair metric still zero"; exit 1; }; \
	curl -sf $$base/v1/fleet/devices/$$id/telemetry?limit=5 | grep -q '"window_ces"' || { echo "smoke-fleet: telemetry empty"; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	grep -q 'scrubd: stopped' $$log; \
	rm -rf $$dir; \
	echo "smoke-fleet: OK"

# smoke-ondie proves the on-die ECC + active-profiling path end to end
# through the CLI: the same aged-device run with an on-die code and a
# profiled policy twice must be byte-identical (determinism), carry the
# on-die telemetry table, and honour the Luo-style weak-code flags.
smoke-ondie:
	@set -e; \
	dir=$$(mktemp -d); bin=$$dir/scrubsim; \
	$(GO) build -o $$bin ./cmd/scrubsim; \
	$$bin -workload idle-archive -horizon 40000 -interval 1250 -aged 15000000 \
		-scheme BCH-4 -policy profiled-1 -ondie-t 1 >$$dir/a.out; \
	$$bin -workload idle-archive -horizon 40000 -interval 1250 -aged 15000000 \
		-scheme BCH-4 -policy profiled-1 -ondie-t 1 >$$dir/b.out; \
	cmp $$dir/a.out $$dir/b.out || { echo "smoke-ondie: repeated run differs"; exit 1; }; \
	grep -q 'On-die ECC' $$dir/a.out || { echo "smoke-ondie: on-die table missing"; exit 1; }; \
	grep -q 'profiling rounds' $$dir/a.out || { echo "smoke-ondie: profiling telemetry missing"; exit 1; }; \
	grep -q 'at-risk lines' $$dir/a.out || { echo "smoke-ondie: at-risk telemetry missing"; exit 1; }; \
	echo "smoke-ondie: profiled run deterministic with full telemetry"; \
	$$bin -workload idle-archive -horizon 40000 -aged 15000000 \
		-ondie-t 4 -ondie-weak-t 1 -ondie-weak-frac 0.25 >$$dir/weak.out; \
	grep -q 'weak-code lines' $$dir/weak.out || { echo "smoke-ondie: weak-code telemetry missing"; exit 1; }; \
	grep -q 'check bits saved' $$dir/weak.out || { echo "smoke-ondie: capacity telemetry missing"; exit 1; }; \
	$$bin -ondie-t 99 >/dev/null 2>$$dir/err.out && { echo "smoke-ondie: invalid strength accepted"; exit 1; }; \
	grep -q 'ondie' $$dir/err.out || { echo "smoke-ondie: invalid strength error unhelpful"; exit 1; }; \
	rm -rf $$dir; \
	echo "smoke-ondie: OK"

# smoke-overload floods a deliberately tiny daemon (one worker, short
# queue) with scrubloadgen at small scale and asserts the admission
# machinery end to end: shed-state transitions observed via /healthz, the
# shed counters visible in /metrics, batch submissions group-committed,
# and the daemon back to "healthy" once the flood drains.
smoke-overload:
	@set -e; \
	dir=$$(mktemp -d); log=$$dir/scrubd.log; \
	$(GO) build -o $$dir/scrubd ./cmd/scrubd; \
	$(GO) build -o $$dir/scrubloadgen ./cmd/scrubloadgen; \
	$$dir/scrubd -addr 127.0.0.1:0 -queue 24 -workers 1 -aging 2s >$$log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do grep -q 'listening on' $$log && break; sleep 0.1; done; \
	base=$$(sed -n 's/^scrubd: listening on \(.*\)$$/\1/p' $$log); \
	test -n "$$base"; echo "smoke-overload: daemon at $$base"; \
	$$dir/scrubloadgen -addr $$base -jobs 400 -batch 16 -conc 4 -tenants 3 \
		-unique 60 -out $$dir/bench.json >$$dir/loadgen.out; \
	grep -q 'shed state .* -> ' $$dir/loadgen.out || { echo "smoke-overload: no shed transition observed"; cat $$dir/loadgen.out; exit 1; }; \
	grep -q 'shed state .* -> healthy' $$dir/loadgen.out || { echo "smoke-overload: never transitioned back to healthy"; cat $$dir/loadgen.out; exit 1; }; \
	echo "smoke-overload: shed-state transitions observed"; \
	grep -q 'final state healthy' $$dir/loadgen.out || { echo "smoke-overload: daemon did not recover to healthy"; cat $$dir/loadgen.out; exit 1; }; \
	curl -sf $$base/healthz | grep -q '"state":"healthy"' || { echo "smoke-overload: healthz not healthy after drain"; curl -s $$base/healthz; exit 1; }; \
	echo "smoke-overload: recovered to healthy after drain"; \
	curl -sf $$base/metrics >$$dir/metrics.out; \
	grep -q 'scrubd_batch_requests_total' $$dir/metrics.out || { echo "smoke-overload: batch metrics missing"; exit 1; }; \
	grep 'scrubd_batch_requests_total' $$dir/metrics.out | grep -qv ' 0$$' || { echo "smoke-overload: no batch requests counted"; exit 1; }; \
	{ grep 'scrubd_shed_batch_total' $$dir/metrics.out | grep -qv ' 0$$'; } || \
	{ grep 'scrubd_shed_normal_total' $$dir/metrics.out | grep -qv ' 0$$'; } || \
		{ echo "smoke-overload: shed counters all zero"; cat $$dir/metrics.out; exit 1; }; \
	grep -q 'scrubd_admission_state 0' $$dir/metrics.out || { echo "smoke-overload: admission_state gauge not healthy"; exit 1; }; \
	test -s $$dir/bench.json; \
	kill -TERM $$pid; wait $$pid; \
	grep -q 'scrubd: stopped' $$log; \
	rm -rf $$dir; \
	echo "smoke-overload: OK"

# vulncheck runs the Go vulnerability scanner when installed (CI installs
# it; locally: go install golang.org/x/vuln/cmd/govulncheck@latest).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; \
	fi

clean:
	$(GO) clean ./...
