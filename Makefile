# Build and verification entry points. `make check` is what CI runs.

GO ?= go
FUZZTIME ?= 15s

.PHONY: all build vet test race fuzz check experiments clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing rounds on the codec round-trip properties. The committed
# seed corpus under testdata/fuzz/ always runs as part of `make test`;
# this target additionally explores new inputs for FUZZTIME per target.
fuzz:
	$(GO) test -fuzz=FuzzBCHRoundTrip -fuzztime=$(FUZZTIME) ./internal/bch/
	$(GO) test -fuzz=FuzzBCHLineRoundTrip -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -fuzz=FuzzSECDEDLineRoundTrip -fuzztime=$(FUZZTIME) ./internal/ecc/

check: vet build race

# Regenerate every table at CI scale.
experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
